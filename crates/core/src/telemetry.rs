//! Process-wide instrumentation: spans, counters and log-scale duration
//! histograms for the trial pipeline and everything built on top of it.
//!
//! The collector is a single process-global singleton guarded by one
//! atomic `enabled` flag. **When disabled — the default — instrumentation
//! is overhead-free**: every entry point performs one relaxed atomic load
//! and returns without allocating, locking or reading the clock. Spans on
//! the disabled path are inert zero-sized guards.
//!
//! When enabled (via [`set_enabled`]), the collector records:
//!
//! * **spans** — named monotonic timings aggregated per name into count /
//!   total / min / max plus a log₂-nanosecond histogram (40 buckets cover
//!   1 ns … ~9 minutes), and
//! * **trace events** — the individual span intervals, exportable as a
//!   Chrome trace-event JSON file loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) (capped; the cap is reported as
//!   a dropped-event count, never an error), and
//! * **counters** — named monotonically increasing totals.
//!
//! Telemetry never touches experiment outputs: wall-clock data lives only
//! in the metrics / trace exports produced from [`snapshot`], never in
//! archived reports, so every byte-identity guarantee holds with
//! telemetry on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{u64_to_json, JsonValue};

/// Format tag written into the `--metrics` summary document.
pub const METRICS_FORMAT: &str = "ivc-metrics-v1";

/// Span covering one whole Prepare stage (cell-invariant work).
pub const SPAN_STAGE_PREPARE: &str = "stage.prepare";
/// Span covering one whole Perturb stage (per-trial randomness).
pub const SPAN_STAGE_PERTURB: &str = "stage.perturb";
/// Span covering one whole Evaluate stage (recognition + defense).
pub const SPAN_STAGE_EVALUATE: &str = "stage.evaluate";

/// Number of log₂-ns histogram buckets: bucket `i` holds durations with
/// `floor(log2(ns)) == i`, so bucket 39 starts at 2³⁹ ns ≈ 9.2 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Cap on buffered trace events; beyond it events are counted as dropped
/// rather than stored, bounding memory on long campaigns.
const MAX_TRACE_EVENTS: usize = 262_144;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans closed under this name.
    pub count: u64,
    /// Sum of all span durations, in nanoseconds.
    pub total_ns: u64,
    /// Shortest observed duration, in nanoseconds.
    pub min_ns: u64,
    /// Longest observed duration, in nanoseconds.
    pub max_ns: u64,
    /// Log₂-nanosecond histogram of durations (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl SpanStat {
    fn new() -> SpanStat {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Mean duration in nanoseconds (0 when no spans were recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Histogram bucket for a duration: `floor(log2(ns))`, clamped so that
/// sub-nanosecond readings land in bucket 0 and everything above ~9
/// minutes lands in the last bucket.
pub fn bucket_index(ns: u64) -> usize {
    let bits = 63 - ns.max(1).leading_zeros() as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// One closed span interval, kept for trace export.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
}

/// Everything the collector accumulates while enabled.
struct Inner {
    /// Time origin for trace timestamps; reset with the collector.
    epoch: Instant,
    /// Per-name aggregates, small enough for a linear scan.
    spans: Vec<(&'static str, SpanStat)>,
    /// Named counters.
    counters: Vec<(&'static str, u64)>,
    /// Individual intervals for trace export, capped.
    events: Vec<TraceEvent>,
    /// Events discarded once `events` hit [`MAX_TRACE_EVENTS`].
    dropped_events: u64,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            epoch: Instant::now(),
            spans: Vec::new(),
            counters: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }
}

struct Collector {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        inner: Mutex::new(Inner::new()),
    })
}

/// Monotonic per-thread identifier for trace lanes (thread 1, 2, ...
/// in order of first instrumentation touch).
fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|lane| *lane)
}

/// Turn collection on or off. Disabling does not clear accumulated data;
/// use [`reset`] for that.
pub fn set_enabled(enabled: bool) {
    collector().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether the collector is currently recording.
pub fn is_enabled() -> bool {
    collector().enabled.load(Ordering::Relaxed)
}

/// Clear all accumulated spans, counters and trace events and restart the
/// trace clock at zero.
pub fn reset() {
    let mut inner = collector().inner.lock().expect("telemetry poisoned");
    *inner = Inner::new();
}

/// Start a span. Records its duration (and a trace interval) when the
/// returned guard drops. On the disabled path this performs one relaxed
/// atomic load and allocates nothing.
#[must_use = "a span measures until it is dropped"]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: None };
    }
    Span {
        active: Some(ActiveSpan {
            name,
            start: Instant::now(),
        }),
    }
}

/// Add `n` to the named counter. A single relaxed load and no work when
/// disabled.
pub fn add_count(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = collector().inner.lock().expect("telemetry poisoned");
    match inner.counters.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v += n,
        None => inner.counters.push((name, n)),
    }
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
}

/// Guard returned by [`span`]; measures from creation to drop.
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end = Instant::now();
        let dur_ns = end.duration_since(active.start).as_nanos() as u64;
        let tid = thread_lane();
        let mut inner = collector().inner.lock().expect("telemetry poisoned");
        let start_ns = active.start.duration_since(inner.epoch).as_nanos() as u64;
        match inner.spans.iter_mut().find(|(k, _)| *k == active.name) {
            Some((_, stat)) => stat.record(dur_ns),
            None => {
                let mut stat = SpanStat::new();
                stat.record(dur_ns);
                inner.spans.push((active.name, stat));
            }
        }
        if inner.events.len() < MAX_TRACE_EVENTS {
            inner.events.push(TraceEvent {
                name: active.name,
                tid,
                start_ns,
                dur_ns,
            });
        } else {
            inner.dropped_events += 1;
        }
    }
}

/// A point-in-time copy of everything the collector has accumulated,
/// with spans and counters sorted by name for deterministic export.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-name span aggregates, sorted by name.
    pub spans: Vec<(String, SpanStat)>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Trace intervals `(name, thread lane, start ns, duration ns)` in
    /// completion order.
    pub events: Vec<(String, u64, u64, u64)>,
    /// Trace intervals discarded after the buffer cap was reached.
    pub dropped_events: u64,
}

/// Copy out the collector's current contents.
pub fn snapshot() -> Snapshot {
    let inner = collector().inner.lock().expect("telemetry poisoned");
    let mut spans: Vec<(String, SpanStat)> = inner
        .spans
        .iter()
        .map(|(name, stat)| (name.to_string(), stat.clone()))
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    let mut counters: Vec<(String, u64)> = inner
        .counters
        .iter()
        .map(|(name, v)| (name.to_string(), *v))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let events = inner
        .events
        .iter()
        .map(|e| (e.name.to_string(), e.tid, e.start_ns, e.dur_ns))
        .collect();
    Snapshot {
        spans,
        counters,
        events,
        dropped_events: inner.dropped_events,
    }
}

impl Snapshot {
    /// Look up one span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, stat)| stat)
    }

    /// Look up one counter by name (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The `ivc-metrics-v1` summary document: per-span aggregates with
    /// histograms, counters, and the measured wall clock.
    pub fn metrics_json(&self, wall_s: f64) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|(name, stat)| {
                let first = stat.buckets.iter().position(|&b| b != 0).unwrap_or(0);
                let last = stat
                    .buckets
                    .iter()
                    .rposition(|&b| b != 0)
                    .unwrap_or_else(|| first.saturating_sub(1));
                let buckets: Vec<JsonValue> = stat.buckets[first..=last.max(first)]
                    .iter()
                    .map(|&b| u64_to_json(b))
                    .collect();
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("count".to_string(), u64_to_json(stat.count)),
                    ("total_ns".to_string(), u64_to_json(stat.total_ns)),
                    ("mean_ns".to_string(), u64_to_json(stat.mean_ns())),
                    ("min_ns".to_string(), u64_to_json(stat.min_ns)),
                    ("max_ns".to_string(), u64_to_json(stat.max_ns)),
                    (
                        "histogram_log2_ns_offset".to_string(),
                        u64_to_json(first as u64),
                    ),
                    ("histogram_log2_ns".to_string(), JsonValue::Array(buckets)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("value".to_string(), u64_to_json(*v)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("format".to_string(), JsonValue::string(METRICS_FORMAT)),
            ("wall_s".to_string(), JsonValue::number(wall_s)),
            ("spans".to_string(), JsonValue::Array(spans)),
            ("counters".to_string(), JsonValue::Array(counters)),
            (
                "dropped_trace_events".to_string(),
                u64_to_json(self.dropped_events),
            ),
        ])
    }

    /// A Chrome trace-event document (the `{"traceEvents": [...]}` shape
    /// understood by `chrome://tracing` and Perfetto): one complete
    /// (`"ph": "X"`) event per recorded span interval, timestamps and
    /// durations in microseconds.
    pub fn trace_json(&self) -> JsonValue {
        let events = self
            .events
            .iter()
            .map(|(name, tid, start_ns, dur_ns)| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("cat".to_string(), JsonValue::string("ivc")),
                    ("ph".to_string(), JsonValue::string("X")),
                    ("pid".to_string(), u64_to_json(1)),
                    ("tid".to_string(), u64_to_json(*tid)),
                    ("ts".to_string(), JsonValue::number(*start_ns as f64 / 1e3)),
                    ("dur".to_string(), JsonValue::number(*dur_ns as f64 / 1e3)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("traceEvents".to_string(), JsonValue::Array(events)),
            ("displayTimeUnit".to_string(), JsonValue::string("ms")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests that enable it must not
    /// interleave, and stage/executor tests running concurrently may add
    /// their own span names — so these tests use `test.`-prefixed names
    /// and assert only on those.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_index_is_floor_log2_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_and_stats_accumulate() {
        let mut stat = SpanStat::new();
        for ns in [1, 2, 3, 1024, 1_000_000] {
            stat.record(ns);
        }
        assert_eq!(stat.count, 5);
        assert_eq!(stat.total_ns, 1 + 2 + 3 + 1024 + 1_000_000);
        assert_eq!(stat.min_ns, 1);
        assert_eq!(stat.max_ns, 1_000_000);
        assert_eq!(stat.buckets[0], 1); // 1 ns
        assert_eq!(stat.buckets[1], 2); // 2 and 3 ns
        assert_eq!(stat.buckets[10], 1); // 1024 ns
        assert_eq!(stat.buckets[19], 1); // 1e6 ns in [2^19, 2^20)
        assert_eq!(stat.mean_ns(), stat.total_ns / 5);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _gate = lock();
        set_enabled(false);
        reset();
        {
            let _span = span("test.disabled");
            add_count("test.disabled_counter", 3);
        }
        let snap = snapshot();
        assert!(snap.span("test.disabled").is_none());
        assert_eq!(snap.counter("test.disabled_counter"), 0);
        assert!(snap.events.iter().all(|(name, ..)| name != "test.disabled"));
    }

    #[test]
    fn enabled_collector_aggregates_spans_and_counters() {
        let _gate = lock();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _span = span("test.work");
        }
        add_count("test.items", 2);
        add_count("test.items", 5);
        set_enabled(false);
        let snap = snapshot();
        let stat = snap.span("test.work").expect("span recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.min_ns <= stat.max_ns);
        assert_eq!(stat.buckets.iter().sum::<u64>(), 3);
        assert_eq!(snap.counter("test.items"), 7);
        let test_events: Vec<_> = snap
            .events
            .iter()
            .filter(|(name, ..)| name == "test.work")
            .collect();
        assert_eq!(test_events.len(), 3);
    }

    #[test]
    fn metrics_json_round_trips_and_names_spans() {
        let _gate = lock();
        reset();
        set_enabled(true);
        {
            let _span = span("test.metrics");
        }
        add_count("test.metrics_counter", 4);
        set_enabled(false);
        let doc = snapshot().metrics_json(1.5);
        let text = doc.to_json_string_pretty();
        let parsed = JsonValue::parse(&text).expect("metrics JSON parses");
        assert_eq!(
            parsed.get("format").and_then(JsonValue::as_str),
            Some(METRICS_FORMAT)
        );
        assert_eq!(parsed.get("wall_s").and_then(JsonValue::as_f64), Some(1.5));
        let spans = parsed
            .get("spans")
            .and_then(JsonValue::as_array)
            .expect("spans array");
        let entry = spans
            .iter()
            .find(|s| s.get("name").and_then(JsonValue::as_str) == Some("test.metrics"))
            .expect("named span present");
        assert_eq!(entry.get("count").and_then(JsonValue::as_u64), Some(1));
        let hist = entry
            .get("histogram_log2_ns")
            .and_then(JsonValue::as_array)
            .expect("histogram present");
        assert_eq!(
            hist.iter().filter_map(JsonValue::as_u64).sum::<u64>(),
            1,
            "histogram holds exactly the one recorded span"
        );
        let counters = parsed
            .get("counters")
            .and_then(JsonValue::as_array)
            .expect("counters array");
        assert!(counters
            .iter()
            .any(
                |c| c.get("name").and_then(JsonValue::as_str) == Some("test.metrics_counter")
                    && c.get("value").and_then(JsonValue::as_u64) == Some(4)
            ));
    }

    #[test]
    fn trace_json_matches_the_chrome_trace_shape() {
        let _gate = lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("test.trace_outer");
            let _inner = span("test.trace_inner");
        }
        set_enabled(false);
        let doc = snapshot().trace_json();
        let parsed = JsonValue::parse(&doc.to_json_string()).expect("trace JSON parses");
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(JsonValue::as_str),
            Some("ms")
        );
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        let ours: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .is_some_and(|n| n.starts_with("test.trace_"))
            })
            .collect();
        assert_eq!(ours.len(), 2);
        for event in ours {
            assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert_eq!(event.get("cat").and_then(JsonValue::as_str), Some("ivc"));
            assert_eq!(event.get("pid").and_then(JsonValue::as_u64), Some(1));
            assert!(event.get("tid").and_then(JsonValue::as_u64).is_some());
            assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(event
                .get("dur")
                .and_then(JsonValue::as_f64)
                .is_some_and(|d| d >= 0.0));
        }
    }

    #[test]
    fn reset_clears_accumulated_data() {
        let _gate = lock();
        reset();
        set_enabled(true);
        {
            let _span = span("test.reset");
        }
        add_count("test.reset_counter", 1);
        reset();
        set_enabled(false);
        let snap = snapshot();
        assert!(snap.span("test.reset").is_none());
        assert_eq!(snap.counter("test.reset_counter"), 0);
    }
}
