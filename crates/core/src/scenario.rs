//! Scenario description: everything that defines one experimental trial.

use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::microphone::DevicePreset;
use ivc_room::RoomPreset;
use serde::{Deserialize, Serialize};

/// How the voice command reaches the victim device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delivery {
    /// A person speaks the command normally.
    Legitimate {
        /// Talker level as SPL at 1 m, in dB (conversational speech ≈ 60–70).
        talker_spl_db: f64,
    },
    /// The baseline inaudible attack: one ultrasonic speaker plays the
    /// AM-modulated command plus carrier.
    SingleSpeakerUltrasound {
        /// Electrical drive power in watt.
        power_w: f64,
        /// Carrier frequency in Hz.
        carrier_hz: f64,
    },
    /// The long-range attack: carrier and spectrum slices split across an
    /// ultrasonic speaker array.
    ArrayUltrasound {
        /// Number of array elements (1 carrier element + sideband elements).
        num_elements: usize,
        /// Total electrical power across the array, in watt.
        total_power_w: f64,
        /// Carrier frequency in Hz.
        carrier_hz: f64,
    },
}

impl Delivery {
    /// `true` for the two ultrasonic-injection variants.
    pub fn is_attack(&self) -> bool {
        !matches!(self, Delivery::Legitimate { .. })
    }

    /// Short label used in result tables.
    pub fn label(&self) -> String {
        match self {
            Delivery::Legitimate { .. } => "legitimate voice".to_string(),
            Delivery::SingleSpeakerUltrasound { power_w, .. } => {
                format!("single-speaker attack ({power_w:.1} W)")
            }
            Delivery::ArrayUltrasound {
                num_elements,
                total_power_w,
                ..
            } => format!("{num_elements}-speaker attack ({total_power_w:.1} W)"),
        }
    }
}

/// A complete experimental setup.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The victim device.
    pub device: DevicePreset,
    /// Source-to-device distance in metres.
    pub distance_m: f64,
    /// How the command is delivered.
    pub delivery: Delivery,
    /// Ambient room noise, in dB SPL.
    pub ambient_noise_spl_db: f64,
    /// Distance of the nearest bystander to the source, for leakage
    /// estimation (only meaningful for attack deliveries).
    pub bystander_distance_m: f64,
    /// Air conditions.
    pub env: AirEnvironment,
    /// The room the trial takes place in.  `None` keeps the historical
    /// free-field channel (direct path only); `Some(preset)` propagates
    /// both the attack path and the bystander's leak path through the
    /// room's image-source model (`Anechoic` reproduces the free-field
    /// result bit for bit).
    pub room: Option<RoomPreset>,
    /// Master seed for every stochastic component of the trial.
    pub seed: u64,
    /// Optionally truncate the synthesised command to this many seconds to
    /// bound simulation cost (`f64::INFINITY` keeps the whole command).
    pub max_voice_duration_s: f64,
    /// Adaptive-attacker shadow suppression in `[0, 1]`: the attack
    /// baseband is pre-compensated against the detector's shadow feature
    /// before modulation (`0.0`, the default, is the oblivious attacker
    /// and leaves the waveform untouched; ignored for legitimate
    /// deliveries).
    pub shadow_suppression: f64,
}

impl Scenario {
    /// A convenient starting point: an Android phone 2 m away in a quiet
    /// room, attacked by an 8-element array at 40 W total.
    pub fn default_attack() -> Self {
        Scenario {
            device: DevicePreset::AndroidPhone,
            distance_m: 2.0,
            delivery: Delivery::ArrayUltrasound {
                num_elements: 8,
                total_power_w: 40.0,
                carrier_hz: 40_000.0,
            },
            ambient_noise_spl_db: 40.0,
            bystander_distance_m: 1.0,
            env: AirEnvironment::default(),
            room: None,
            seed: 1,
            max_voice_duration_s: f64::INFINITY,
            shadow_suppression: 0.0,
        }
    }

    /// A legitimate-use counterpart of [`Scenario::default_attack`].
    pub fn default_legitimate() -> Self {
        Scenario {
            delivery: Delivery::Legitimate {
                talker_spl_db: 65.0,
            },
            ..Scenario::default_attack()
        }
    }

    /// Returns a copy with a different distance.
    pub fn at_distance(&self, distance_m: f64) -> Self {
        Scenario {
            distance_m,
            ..self.clone()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        Scenario {
            seed,
            ..self.clone()
        }
    }

    /// Returns a copy placed in a different room (`None` = free field).
    pub fn in_room(&self, room: Option<RoomPreset>) -> Self {
        Scenario {
            room,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_classification_and_labels() {
        assert!(!Delivery::Legitimate {
            talker_spl_db: 65.0
        }
        .is_attack());
        assert!(Delivery::SingleSpeakerUltrasound {
            power_w: 10.0,
            carrier_hz: 40_000.0
        }
        .is_attack());
        assert!(Delivery::ArrayUltrasound {
            num_elements: 61,
            total_power_w: 100.0,
            carrier_hz: 40_000.0
        }
        .is_attack());
        assert!(Delivery::Legitimate {
            talker_spl_db: 65.0
        }
        .label()
        .contains("legitimate"));
        assert!(Delivery::ArrayUltrasound {
            num_elements: 61,
            total_power_w: 100.0,
            carrier_hz: 40_000.0
        }
        .label()
        .contains("61"));
    }

    #[test]
    fn scenario_builders() {
        let attack = Scenario::default_attack();
        assert!(attack.delivery.is_attack());
        let legit = Scenario::default_legitimate();
        assert!(!legit.delivery.is_attack());
        assert_eq!(legit.distance_m, attack.distance_m);
        let far = attack.at_distance(7.6);
        assert_eq!(far.distance_m, 7.6);
        assert_eq!(far.device, attack.device);
        let reseeded = attack.with_seed(99);
        assert_eq!(reseeded.seed, 99);
        assert_eq!(attack.room, None);
        let roomed = attack.in_room(Some(RoomPreset::Office));
        assert_eq!(roomed.room, Some(RoomPreset::Office));
        assert_eq!(roomed.distance_m, attack.distance_m);
    }

    #[test]
    fn delivery_serialisation_roundtrip() {
        let d = Delivery::ArrayUltrasound {
            num_elements: 16,
            total_power_w: 55.0,
            carrier_hz: 40_000.0,
        };
        // serde_json is not a dependency; check that the serde derives exist
        // by exercising the serializer-agnostic trait bounds.
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>(_: &T) {}
        assert_serde(&d);
    }
}
