//! Content-addressed reuse of Prepare-stage sub-products.
//!
//! Adjacent cells of a campaign differ in one axis, yet a naive Prepare
//! rebuilds everything: the TTS render, the attack build (modulation,
//! power allocation, the array's emitted near field), the room instance
//! and both propagation runs.  Each of those is a pure function of a
//! *sub-tuple* of the cell's axes — an utterance render depends only on
//! `(command, talker)`, an attack build on `(command, delivery,
//! suppression, cap, baseband)`, a propagation on its source, geometry
//! and environment.  This module hashes those sub-tuples into string keys
//! (range-vector-hashing style: the key *is* the deterministic render of
//! the determining inputs) and memoises the products process-wide, so a
//! sweep along one axis re-derives only what that axis determines.
//!
//! Soundness leans on the purity contract from the staged pipeline: a
//! trial is a pure function of `(spec, cell, seed)`, so equal keys imply
//! bit-identical products and archives stay `cmp`-identical with the
//! cache on or off, at any worker or shard count.  Keys render floats
//! with `{:?}` (shortest round-trip representation), so distinct inputs
//! always produce distinct keys.
//!
//! Memory is bounded: entries are evicted least-recently-used by byte
//! estimate once the cache exceeds its capacity (default 512 MiB,
//! `IVC_PREPARE_CACHE_MB` overrides).  `IVC_PREPARE_CACHE=off` (or `0`)
//! disables the cache entirely; [`set_enabled`] does the same from code
//! (the byte-identity suite runs both ways and compares archives).
//!
//! Telemetry: every lookup increments `executor.prepare_cache_hit` or
//! `executor.prepare_cache_miss`, and hits additionally count the
//! per-product `prepare.*_reused` counter, so `repro profile` shows
//! cache effectiveness per run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::scenario::Scenario;
use crate::telemetry;
use crate::Result;
use ivc_attack::baseband::BasebandConfig;
use ivc_attack::leakage::LeakageReport;
use ivc_dsp::signal::Signal;
use ivc_room::RoomInstance;
use ivc_speech::cache::TalkerKey;
use ivc_speech::commands::VoiceCommand;
use ivc_speech::synthesis::Utterance;

/// Default capacity: generous for workstation campaigns, far below the
/// size at which an orchestrator shard would notice.
const DEFAULT_CAPACITY_BYTES: usize = 512 * 1024 * 1024;

/// The speaker-side products of one attack build, cached as a unit: the
/// emitted near field referenced to 1 m, the array aperture and the
/// electrical budget the allocation could not place.
#[derive(Debug, Clone)]
pub struct AttackBuild {
    /// Superposed element emissions at the 1 m reference.
    pub near_field_at_1m: Signal,
    /// Physical aperture of the emitting array, in metres.
    pub aperture_m: f64,
    /// Unplaced electrical budget, in watts.
    pub power_shortfall_w: f64,
}

/// Which Prepare sub-product a cache entry holds (drives the
/// `prepare.*_reused` telemetry counter names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductKind {
    /// A full TTS render for one `(command, talker)`.
    Utterance,
    /// An [`AttackBuild`].
    AttackBuild,
    /// A [`RoomInstance`] (geometry + materials for one room sub-tuple).
    Rir,
    /// A propagated pressure waveform at the device port.
    Propagation,
    /// A bystander [`LeakageReport`].
    Leakage,
}

impl ProductKind {
    fn reused_counter(self) -> &'static str {
        match self {
            ProductKind::Utterance => "prepare.utterance_reused",
            ProductKind::AttackBuild => "prepare.attack_build_reused",
            ProductKind::Rir => "prepare.rir_reused",
            ProductKind::Propagation => "prepare.propagation_reused",
            ProductKind::Leakage => "prepare.leakage_reused",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Product {
    Utterance(Arc<Utterance>),
    Signal(Arc<Signal>),
    Attack(Arc<AttackBuild>),
    Room(Arc<RoomInstance>),
    Leakage(Arc<LeakageReport>),
}

/// Types the cache can hold. Sealed to this crate: the set of products is
/// exactly the Prepare stage's sub-products.
pub(crate) trait Cacheable: Sized {
    fn wrap(value: &Arc<Self>) -> Product;
    fn unwrap(product: &Product) -> Option<Arc<Self>>;
    fn byte_estimate(&self) -> usize;
}

impl Cacheable for Utterance {
    fn wrap(value: &Arc<Self>) -> Product {
        Product::Utterance(Arc::clone(value))
    }
    fn unwrap(product: &Product) -> Option<Arc<Self>> {
        match product {
            Product::Utterance(u) => Some(Arc::clone(u)),
            _ => None,
        }
    }
    fn byte_estimate(&self) -> usize {
        self.signal.len() * 8 + self.word_boundaries.len() * 32 + self.text.len() + 128
    }
}

impl Cacheable for Signal {
    fn wrap(value: &Arc<Self>) -> Product {
        Product::Signal(Arc::clone(value))
    }
    fn unwrap(product: &Product) -> Option<Arc<Self>> {
        match product {
            Product::Signal(s) => Some(Arc::clone(s)),
            _ => None,
        }
    }
    fn byte_estimate(&self) -> usize {
        self.len() * 8 + 64
    }
}

impl Cacheable for AttackBuild {
    fn wrap(value: &Arc<Self>) -> Product {
        Product::Attack(Arc::clone(value))
    }
    fn unwrap(product: &Product) -> Option<Arc<Self>> {
        match product {
            Product::Attack(a) => Some(Arc::clone(a)),
            _ => None,
        }
    }
    fn byte_estimate(&self) -> usize {
        self.near_field_at_1m.len() * 8 + 128
    }
}

impl Cacheable for RoomInstance {
    fn wrap(value: &Arc<Self>) -> Product {
        Product::Room(Arc::clone(value))
    }
    fn unwrap(product: &Product) -> Option<Arc<Self>> {
        match product {
            Product::Room(r) => Some(Arc::clone(r)),
            _ => None,
        }
    }
    fn byte_estimate(&self) -> usize {
        self.occluders.len() * 128 + 512
    }
}

impl Cacheable for LeakageReport {
    fn wrap(value: &Arc<Self>) -> Product {
        Product::Leakage(Arc::clone(value))
    }
    fn unwrap(product: &Product) -> Option<Arc<Self>> {
        match product {
            Product::Leakage(l) => Some(Arc::clone(l)),
            _ => None,
        }
    }
    fn byte_estimate(&self) -> usize {
        512
    }
}

struct Entry {
    product: Product,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<String, Entry>,
    total_bytes: usize,
    tick: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<CacheState> {
    static STATE: OnceLock<Mutex<CacheState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(CacheState::default()))
}

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = !matches!(
            std::env::var("IVC_PREPARE_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        AtomicBool::new(on)
    })
}

fn capacity_bytes() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY.get_or_init(|| {
        std::env::var("IVC_PREPARE_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|mb| mb.saturating_mul(1024 * 1024))
            .unwrap_or(DEFAULT_CAPACITY_BYTES)
            .max(1024 * 1024)
    })
}

/// `true` when Prepare sub-products are being reused.
pub fn is_enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Turns reuse on or off process-wide. Results never change — only
/// whether they are recomputed — so this is safe at any point; the
/// byte-identity suite toggles it between otherwise identical campaigns.
pub fn set_enabled(enabled: bool) {
    enabled_flag().store(enabled, Ordering::Relaxed);
}

/// Drops every cached product (counters are monotonic and unaffected).
pub fn clear() {
    let mut guard = state().lock().expect("prepare cache poisoned");
    guard.entries.clear();
    guard.total_bytes = 0;
}

/// A point-in-time view of the cache's effectiveness and footprint.
/// `hits`/`misses`/`evictions` are monotonic over the process lifetime,
/// so concurrent tests can assert on deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache since process start.
    pub hits: u64,
    /// Lookups that had to build since process start.
    pub misses: u64,
    /// Entries dropped by the LRU bound since process start.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Estimated bytes held right now.
    pub bytes: usize,
}

/// Current cache statistics.
pub fn stats() -> CacheStats {
    let guard = state().lock().expect("prepare cache poisoned");
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        entries: guard.entries.len(),
        bytes: guard.total_bytes,
    }
}

fn evict_if_needed(state: &mut CacheState) {
    let cap = capacity_bytes();
    // The entry just inserted carries the highest tick, so the `> 1`
    // guard keeps it even when it alone exceeds the bound.
    while state.total_bytes > cap && state.entries.len() > 1 {
        let victim = state
            .entries
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| k.clone());
        let Some(key) = victim else { break };
        if let Some(entry) = state.entries.remove(&key) {
            state.total_bytes -= entry.bytes;
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            telemetry::add_count("executor.prepare_cache_evicted", 1);
        }
    }
}

/// Looks `key` up; on a miss, runs `build`, stores the product and
/// returns it. Builds run outside the lock and the first insert wins, so
/// racing workers converge on one shared `Arc`.
pub(crate) fn get_or_build<T: Cacheable>(
    kind: ProductKind,
    key: &str,
    build: impl FnOnce() -> Result<T>,
) -> Result<Arc<T>> {
    if !is_enabled() {
        return Ok(Arc::new(build()?));
    }
    {
        let mut guard = state().lock().expect("prepare cache poisoned");
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.entries.get_mut(key) {
            if let Some(value) = T::unwrap(&entry.product) {
                entry.tick = tick;
                drop(guard);
                HITS.fetch_add(1, Ordering::Relaxed);
                telemetry::add_count("executor.prepare_cache_hit", 1);
                telemetry::add_count(kind.reused_counter(), 1);
                return Ok(value);
            }
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    telemetry::add_count("executor.prepare_cache_miss", 1);
    let value = Arc::new(build()?);
    let bytes = value.byte_estimate();
    let mut guard = state().lock().expect("prepare cache poisoned");
    guard.tick += 1;
    let tick = guard.tick;
    if let Some(existing) = guard.entries.get(key).and_then(|e| T::unwrap(&e.product)) {
        // A racing worker inserted first; keep its Arc so every caller
        // shares one copy (the products are bit-identical by purity).
        return Ok(existing);
    }
    guard.entries.insert(
        key.to_string(),
        Entry {
            product: T::wrap(&value),
            bytes,
            tick,
        },
    );
    guard.total_bytes += bytes;
    evict_if_needed(&mut guard);
    Ok(value)
}

// ---------------------------------------------------------------------------
// Key derivation. Public so the key-collision property tests can fuzz the
// exact functions production uses. Every function renders precisely the
// sub-tuple of inputs its product depends on — nothing more (reuse across
// the other axes), nothing less (no cross-scenario collisions).
// ---------------------------------------------------------------------------

/// Key of a full TTS render: `(command, talker, synthesis rate)`.
pub fn utterance_key(command: &VoiceCommand, talker: &TalkerKey, sample_rate_hz: f64) -> String {
    format!(
        "utt|c{:?}|{}|{talker:?}|fs={sample_rate_hz:?}",
        command.id, command.text
    )
}

/// Key of an attack build: the command and cap that shape the baseband,
/// the suppression that pre-compensates it, the delivery that sets
/// carrier/power/element count, and the modulation configuration.
/// Distance, device, room and noise do *not* belong here — the emitted
/// near field is independent of them, which is exactly what lets a
/// distance sweep reuse one build.
pub fn attack_build_key(
    command: &VoiceCommand,
    scenario: &Scenario,
    baseband: &BasebandConfig,
) -> String {
    format!(
        "attack|c{:?}|{}|cap={:?}|sup={:?}|{:?}|{baseband:?}",
        command.id,
        command.text,
        scenario.max_voice_duration_s,
        scenario.shadow_suppression,
        scenario.delivery,
    )
}

/// Key of a legitimate talker's 1 m-referenced source: `(command,
/// variant, cap, talker level)`.
pub fn legitimate_source_key(
    command: &VoiceCommand,
    variant: usize,
    cap_s: f64,
    talker_spl_db: f64,
) -> String {
    format!(
        "legit|c{:?}|{}|v{variant}|cap={cap_s:?}|spl={talker_spl_db:?}",
        command.id, command.text
    )
}

/// Key of a room instantiation: `(preset, target distance, bystander
/// distance)` — the geometry sub-tuple.
pub fn room_key(
    preset: ivc_room::RoomPreset,
    distance_m: f64,
    bystander_distance_m: f64,
) -> String {
    format!("room|{preset:?}|d={distance_m:?}|b={bystander_distance_m:?}")
}

fn room_part(scenario: &Scenario) -> String {
    match scenario.room {
        None => "free".to_string(),
        Some(preset) => room_key(preset, scenario.distance_m, scenario.bystander_distance_m),
    }
}

/// Key of the propagation from a source (identified by its own key) to
/// the device port: source, aperture, distance, room geometry, air.
pub fn target_propagation_key(source_key: &str, aperture_m: f64, scenario: &Scenario) -> String {
    format!(
        "prop|{source_key}|ap={aperture_m:?}|d={:?}|{}|env={:?}",
        scenario.distance_m,
        room_part(scenario),
        scenario.env,
    )
}

/// Key of the bystander propagation + leakage analysis: source, bystander
/// distance, room geometry, air.
pub fn leakage_key(source_key: &str, scenario: &Scenario) -> String {
    format!(
        "leak|{source_key}|b={:?}|{}|env={:?}",
        scenario.bystander_distance_m,
        room_part(scenario),
        scenario.env,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_respects_the_byte_bound() {
        // Capacity is process-wide (env-configured); exercise the eviction
        // helper directly so the test is independent of the environment.
        let mut state = CacheState::default();
        for i in 0..4 {
            state.tick += 1;
            let tick = state.tick;
            state.entries.insert(
                format!("k{i}"),
                Entry {
                    product: Product::Signal(Arc::new(
                        Signal::new(vec![0.0], 48_000.0).expect("valid signal"),
                    )),
                    bytes: capacity_bytes() / 2,
                    tick,
                },
            );
            state.total_bytes += capacity_bytes() / 2;
        }
        evict_if_needed(&mut state);
        assert!(state.total_bytes <= capacity_bytes());
        // The newest entry always survives.
        assert!(state.entries.contains_key("k3"));
    }

    #[test]
    fn keys_render_the_determining_sub_tuple_only() {
        let command = ivc_speech::commands::corpus()[0].clone();
        let a = Scenario::default_attack();
        let mut farther = a.clone();
        farther.distance_m += 1.0;
        // Distance is not an attack-build axis: builds are shared.
        assert_eq!(
            attack_build_key(&command, &a, &BasebandConfig::default()),
            attack_build_key(&command, &farther, &BasebandConfig::default()),
        );
        // But it is a propagation axis: propagations are not.
        assert_ne!(
            target_propagation_key("src", 0.1, &a),
            target_propagation_key("src", 0.1, &farther),
        );
    }
}
