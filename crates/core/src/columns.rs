//! Length-prefixed little-endian column primitives for compact binary
//! archives.
//!
//! The model is deliberately tiny: a document is a flat byte buffer into
//! which callers append fixed-width scalars (`u64`, `f64` as IEEE-754
//! bits, `u8`) and length-prefixed byte strings.  A *column* is just a
//! length-prefixed byte string whose payload was itself built with these
//! primitives, so a reader can skip any column in O(1) — the length
//! prefix is the seek table — and a fixed-width column (8 bytes per row)
//! is directly addressable, which keeps the layout mmap-friendly.
//!
//! Everything is little-endian and nothing depends on platform layout,
//! so the same logical document always produces the same bytes —
//! the property the campaign archive formats build their byte-identity
//! contracts on.  `f64` values travel as raw IEEE-754 bits
//! ([`f64::to_bits`]), so every value — including negative zero and NaN
//! payloads — round-trips exactly.
//!
//! Reads are bounds-checked: a truncated or trailing-garbage document is
//! a [`ColumnError`], never a panic or a silent misread.

/// Decode failure: the document ended early or held an impossible value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnError {
    /// The reader needed more bytes than the document has left.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
        /// Byte offset the read started at.
        at: usize,
    },
    /// The bytes decoded to a value the document cannot mean.
    Malformed(String),
}

impl std::fmt::Display for ColumnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnError::Truncated {
                needed,
                remaining,
                at,
            } => write!(
                f,
                "truncated column data: needed {needed} byte(s) at offset {at}, \
                 {remaining} remaining"
            ),
            ColumnError::Malformed(message) => write!(f, "malformed column data: {message}"),
        }
    }
}

impl std::error::Error for ColumnError {}

/// Result alias for column decoding.
pub type Result<T> = std::result::Result<T, ColumnError>;

/// Appends a `u64` as 8 little-endian bytes.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `f64` as its 8 raw IEEE-754 bits, little-endian.
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Appends a single byte.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a length-prefixed byte string (u64 length, then the bytes).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, text: &str) {
    put_bytes(out, text.as_bytes());
}

/// A bounds-checked reader over a column document (or one column of it).
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over the whole of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ColumnError::Truncated {
                needed: n,
                remaining: self.remaining(),
                at: self.pos,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads 8 little-endian bytes as a `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` that must fit in `usize` (lengths and counts).
    pub fn take_len(&mut self) -> Result<usize> {
        let value = self.take_u64()?;
        usize::try_from(value)
            .map_err(|_| ColumnError::Malformed(format!("length {value} exceeds usize")))
    }

    /// Reads 8 bytes as raw IEEE-754 `f64` bits.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.take_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|e| ColumnError::Malformed(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads a length-prefixed column and returns a cursor over its
    /// payload, so per-column framing errors stay local to that column.
    pub fn take_column(&mut self) -> Result<Cursor<'a>> {
        Ok(Cursor::new(self.take_bytes()?))
    }

    /// Asserts the document was consumed exactly: trailing bytes mean the
    /// writer and reader disagree about the layout, which must be loud.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(ColumnError::Malformed(format!(
                "{} trailing byte(s) after the last expected field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends one length-prefixed column whose payload is produced by
/// `write` — the standard way to frame a column so readers can skip it.
pub fn put_column(out: &mut Vec<u8>, write: impl FnOnce(&mut Vec<u8>)) {
    let mut payload = Vec::new();
    write(&mut payload);
    put_bytes(out, &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings_round_trip() {
        let mut out = Vec::new();
        put_u64(&mut out, 0);
        put_u64(&mut out, u64::MAX);
        put_f64(&mut out, -0.0);
        put_f64(&mut out, f64::from_bits(0x7ff8_0000_0000_1234)); // NaN payload
        put_u8(&mut out, 2);
        put_str(&mut out, "ivc \u{1F980}");
        put_bytes(&mut out, &[]);
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.take_u64().unwrap(), 0);
        assert_eq!(cursor.take_u64().unwrap(), u64::MAX);
        assert_eq!(cursor.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            cursor.take_f64().unwrap().to_bits(),
            0x7ff8_0000_0000_1234,
            "NaN payloads must survive"
        );
        assert_eq!(cursor.take_u8().unwrap(), 2);
        assert_eq!(cursor.take_str().unwrap(), "ivc \u{1F980}");
        assert_eq!(cursor.take_bytes().unwrap(), &[] as &[u8]);
        cursor.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut out = Vec::new();
        put_u64(&mut out, 7);
        let mut cursor = Cursor::new(&out[..5]);
        assert!(matches!(
            cursor.take_u64(),
            Err(ColumnError::Truncated {
                needed: 8,
                remaining: 5,
                at: 0
            })
        ));
        // A length prefix pointing past the end is truncation, not a read
        // of whatever follows.
        let mut out = Vec::new();
        put_u64(&mut out, 100);
        out.extend_from_slice(b"short");
        let mut cursor = Cursor::new(&out);
        assert!(matches!(
            cursor.take_bytes(),
            Err(ColumnError::Truncated { needed: 100, .. })
        ));
        // Unread trailing bytes are loud.
        let mut out = Vec::new();
        put_u8(&mut out, 1);
        put_u8(&mut out, 2);
        let mut cursor = Cursor::new(&out);
        cursor.take_u8().unwrap();
        assert!(cursor.expect_end().is_err());
    }

    #[test]
    fn columns_skip_and_nest() {
        let mut out = Vec::new();
        put_column(&mut out, |c| {
            put_u64(c, 1);
            put_u64(c, 2);
        });
        put_column(&mut out, |c| put_str(c, "second"));
        let mut cursor = Cursor::new(&out);
        // Skip the first column wholesale, then read the second.
        let first = cursor.take_column().unwrap();
        assert_eq!(first.remaining(), 16);
        let mut second = cursor.take_column().unwrap();
        assert_eq!(second.take_str().unwrap(), "second");
        second.expect_end().unwrap();
        cursor.expect_end().unwrap();
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xff, 0xfe]);
        let mut cursor = Cursor::new(&out);
        assert!(matches!(cursor.take_str(), Err(ColumnError::Malformed(_))));
    }
}
