//! The staged trial pipeline: **Prepare → Perturb → Evaluate**.
//!
//! A campaign runs N trials of one *cell* (a fixed scenario, varying only
//! the trial seed).  Most of a trial's cost is invariant across those
//! seeds: synthesis, attack construction and power allocation, the speaker
//! array, the room's image-source response and the propagation to the
//! device port and to the bystander.  This module factors the pipeline
//! along that boundary:
//!
//! * **Prepare** ([`PreparedCell::prepare`]) — everything cell-invariant,
//!   packaged as an immutable [`PreparedCell`]: the clean (noise-free)
//!   pressure waveform at the device port per talker, the leakage report
//!   and the power shortfall.  Prepared once per cell and shared by
//!   reference across worker threads.
//! * **Perturb** ([`PreparedCell::perturb`]) — the seed-dependent part:
//!   ambient-noise draw, microphone capture and ADC.
//! * **Evaluate** ([`PreparedCell::evaluate`]) — recognition, defense
//!   feature extraction and the optional trained detector.
//!
//! [`crate::pipeline::run_trial`] survives as the compose-all wrapper; its
//! outputs are bit-identical to the pre-staged monolith (pinned per
//! delivery kind × room preset in `tests/staged_pipeline.rs`).
//!
//! Sharing contract: a `PreparedCell` is immutable after construction and
//! holds no interior mutability, so `&PreparedCell` may be shared freely
//! across threads; `perturb`/`evaluate` are pure functions of `(cell,
//! seed)`, which is what keeps campaign archives byte-identical at any
//! worker count.

use crate::pipeline::TrialOutcome;
use crate::prepare_cache::{self, AttackBuild, ProductKind};
use crate::scenario::{Delivery, Scenario};
use crate::telemetry;
use crate::Result;
use ivc_acoustics::array::SpeakerArray;
use ivc_acoustics::microphone::{CaptureScratch, Microphone};
use ivc_acoustics::noise::room_noise_pa;
use ivc_acoustics::propagation::{propagate, propagate_from_aperture};
use ivc_acoustics::speaker::UltrasonicSpeaker;
use ivc_acoustics::spl::spl_db_to_pressure;
use ivc_attack::baseband::BasebandConfig;
use ivc_attack::leakage::{leakage_from_field, LeakageReport};
use ivc_attack::multispeaker::{single_speaker_element_drives, MultiSpeakerAttack};
use ivc_attack::single::SingleSpeakerAttack;
use ivc_defense::classifier::LogisticRegression;
use ivc_defense::countermeasures::precompensated_baseband;
use ivc_defense::features::DefenseFeatures;
use ivc_dsp::signal::Signal;
use ivc_room::{propagate_in_room, RoomInstance};
use ivc_speech::cache::TalkerKey;
use ivc_speech::commands::VoiceCommand;
use ivc_speech::recognizer::Recognizer;
use ivc_speech::synthesis::Synthesizer;
use std::sync::Arc;

/// Number of deterministic talker variants legitimate deliveries cycle
/// through: trial seed `s` speaks with variant `s % 8`.
pub const NUM_TALKER_VARIANTS: usize = 8;

/// The talker variant a legitimate delivery uses at `seed` (the
/// `seed % 8` semantics the defense dataset and campaigns rely on).
pub fn talker_variant(seed: u64) -> usize {
    seed as usize % NUM_TALKER_VARIANTS
}

/// Shared, cell-independent preparation state: the synthesiser and the
/// baseband configuration.
///
/// Utterance renders (and every other Prepare sub-product) are memoised
/// process-wide in [`crate::prepare_cache`], keyed by the sub-tuple of
/// axes that determines them, so contexts are cheap to create and a
/// campaign's cells share work with each other *and* with later
/// campaigns in the same process.
#[derive(Debug)]
pub struct PrepareContext {
    synth: Synthesizer,
    baseband: BasebandConfig,
}

impl PrepareContext {
    /// A fresh context (sub-product reuse is process-wide, not per
    /// context).
    pub fn new() -> Result<Self> {
        Ok(PrepareContext {
            synth: Synthesizer::new(48_000.0)?,
            baseband: BasebandConfig::default(),
        })
    }

    /// The (possibly truncated) voice waveform of `command` spoken by
    /// `talker` — the process-wide cached render, clipped to the
    /// scenario's cap.
    fn voice(&self, command: &VoiceCommand, talker: TalkerKey, cap_s: f64) -> Result<Signal> {
        let key = prepare_cache::utterance_key(command, &talker, self.synth.sample_rate_hz());
        let utterance = prepare_cache::get_or_build(ProductKind::Utterance, &key, || {
            let _span = telemetry::span("prepare.utterance_render");
            Ok(self.synth.render(command, &talker.profile())?)
        })?;
        Ok(if utterance.signal.duration_s() > cap_s {
            utterance.signal.slice_seconds(0.0, cap_s)
        } else {
            utterance.signal.clone()
        })
    }
}

/// The clean (noise-free) pressure at the device port, per talker path.
///
/// Paths are `Arc`-shared with the process-wide Prepare cache: cells that
/// agree on the propagation sub-tuple hold the same allocation.
#[derive(Debug, Clone)]
enum PreparedPaths {
    /// Attack deliveries: the canonical TTS voice — one path.
    Attack(Arc<Signal>),
    /// Legitimate deliveries: one path per prepared talker variant
    /// (`(variant, clean pressure at port)`, sorted by variant).
    Legitimate(Vec<(usize, Arc<Signal>)>),
}

/// Stage 1 of the trial pipeline: everything invariant across the trials
/// of one campaign cell, packaged immutably (see the module docs for the
/// sharing contract).
#[derive(Debug, Clone)]
pub struct PreparedCell {
    scenario: Scenario,
    command: VoiceCommand,
    microphone: Microphone,
    paths: PreparedPaths,
    /// Speaker-side leakage report (attack deliveries only).
    pub leakage: Option<LeakageReport>,
    /// Electrical budget the delivery could not place (see
    /// [`TrialOutcome::power_shortfall_w`]).
    pub power_shortfall_w: f64,
}

impl PreparedCell {
    /// Runs the Prepare stage for one cell.
    ///
    /// `seeds` lists every trial seed the cell will run: legitimate
    /// deliveries render one path per distinct `seed % 8` talker variant,
    /// so the `seed`-selects-the-talker semantics are preserved exactly.
    /// Attack deliveries always use the canonical TTS voice and prepare a
    /// single path.  `scenario.seed` itself is *not* consulted — the seed
    /// is a Perturb-stage input.
    pub fn prepare(
        ctx: &PrepareContext,
        command: &VoiceCommand,
        scenario: &Scenario,
        seeds: &[u64],
    ) -> Result<PreparedCell> {
        if seeds.is_empty() {
            return Err("PreparedCell::prepare needs at least one trial seed".into());
        }
        if !(0.0..=1.0).contains(&scenario.shadow_suppression) {
            return Err("shadow_suppression must be within [0, 1]".into());
        }
        let _stage = telemetry::span(telemetry::SPAN_STAGE_PREPARE);
        let room = match scenario.room {
            None => None,
            Some(preset) => {
                let key = prepare_cache::room_key(
                    preset,
                    scenario.distance_m,
                    scenario.bystander_distance_m,
                );
                Some(prepare_cache::get_or_build(ProductKind::Rir, &key, || {
                    let _span = telemetry::span("prepare.rir_build");
                    Ok(preset.instantiate(scenario.distance_m, scenario.bystander_distance_m)?)
                })?)
            }
        };
        let room = room.as_deref();
        let cap_s = scenario.max_voice_duration_s;
        let (paths, leakage, power_shortfall_w) = match scenario.delivery {
            Delivery::Legitimate { talker_spl_db } => {
                let mut variants: Vec<usize> = seeds.iter().map(|&s| talker_variant(s)).collect();
                variants.sort_unstable();
                variants.dedup();
                let mut prepared = Vec::with_capacity(variants.len());
                for variant in variants {
                    let source_key = prepare_cache::legitimate_source_key(
                        command,
                        variant,
                        cap_s,
                        talker_spl_db,
                    );
                    let prop_key =
                        prepare_cache::target_propagation_key(&source_key, 0.0, scenario);
                    let at_port =
                        prepare_cache::get_or_build(ProductKind::Propagation, &prop_key, || {
                            let voice = ctx.voice(command, TalkerKey::Variant(variant), cap_s)?;
                            let rms = voice.rms().max(1e-12);
                            let pressure_at_1m =
                                voice.scaled(spl_db_to_pressure(talker_spl_db) / rms);
                            propagate_to_target(&pressure_at_1m, 0.0, scenario, room)
                        })?;
                    prepared.push((variant, at_port));
                }
                (PreparedPaths::Legitimate(prepared), None, 0.0)
            }
            Delivery::SingleSpeakerUltrasound {
                power_w,
                carrier_hz,
            } => {
                let build_key = prepare_cache::attack_build_key(command, scenario, &ctx.baseband);
                let build =
                    prepare_cache::get_or_build(ProductKind::AttackBuild, &build_key, || {
                        let voice = attack_voice(ctx, command, scenario, cap_s)?;
                        let _span = telemetry::span("prepare.attack_build");
                        let attack =
                            SingleSpeakerAttack::build(&voice, carrier_hz, 0.9, &ctx.baseband)?;
                        let speaker = UltrasonicSpeaker::default();
                        let array = SpeakerArray::new(speaker.clone(), 1, 0.03)?;
                        let placed_w = power_w.min(speaker.max_power_w);
                        let drives = single_speaker_element_drives(&attack, placed_w)?;
                        Ok(AttackBuild {
                            near_field_at_1m: array.emitted_field_at_1m(&drives)?,
                            aperture_m: array.aperture_m(),
                            power_shortfall_w: power_w - placed_w,
                        })
                    })?;
                let (at_port, leak) = deliver_attack(&build, &build_key, scenario, room)?;
                (
                    PreparedPaths::Attack(at_port),
                    Some(leak),
                    build.power_shortfall_w,
                )
            }
            Delivery::ArrayUltrasound {
                num_elements,
                total_power_w,
                carrier_hz,
            } => {
                let build_key = prepare_cache::attack_build_key(command, scenario, &ctx.baseband);
                let build =
                    prepare_cache::get_or_build(ProductKind::AttackBuild, &build_key, || {
                        let voice = attack_voice(ctx, command, scenario, cap_s)?;
                        let _span = telemetry::span("prepare.attack_build");
                        let speaker = UltrasonicSpeaker::default();
                        let array = SpeakerArray::new(speaker.clone(), num_elements.max(1), 0.03)?;
                        let (drives, shortfall_w) = if num_elements <= 1 {
                            let attack =
                                SingleSpeakerAttack::build(&voice, carrier_hz, 0.9, &ctx.baseband)?;
                            let placed_w = total_power_w.min(speaker.max_power_w);
                            (
                                single_speaker_element_drives(&attack, placed_w)?,
                                total_power_w - placed_w,
                            )
                        } else {
                            // `build_balanced` sizes the carrier element group
                            // against the budget, so big arrays keep their
                            // carrier-to-sideband balance instead of starving the
                            // carrier at one element's rating (the old E-A2
                            // 61-element anomaly).
                            let attack = MultiSpeakerAttack::build_balanced(
                                &voice,
                                carrier_hz,
                                num_elements,
                                total_power_w,
                                0.3,
                                speaker.max_power_w,
                                &ctx.baseband,
                            )?;
                            let allocation =
                                attack.allocate_power(total_power_w, 0.3, speaker.max_power_w)?;
                            (allocation.drives, allocation.shortfall_w)
                        };
                        Ok(AttackBuild {
                            near_field_at_1m: array.emitted_field_at_1m(&drives)?,
                            aperture_m: array.aperture_m(),
                            power_shortfall_w: shortfall_w,
                        })
                    })?;
                let (at_port, leak) = deliver_attack(&build, &build_key, scenario, room)?;
                (
                    PreparedPaths::Attack(at_port),
                    Some(leak),
                    build.power_shortfall_w,
                )
            }
        };
        Ok(PreparedCell {
            scenario: scenario.clone(),
            command: command.clone(),
            microphone: scenario.device.microphone(),
            paths,
            leakage,
            power_shortfall_w,
        })
    }

    /// The scenario this cell was prepared for (its `seed` field is the
    /// template's and carries no per-trial meaning).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The command this cell injects (or speaks).
    pub fn command(&self) -> &VoiceCommand {
        &self.command
    }

    /// Stage 2: the seed-dependent perturbation — ambient-noise draw,
    /// microphone capture and ADC — returning the digital recording the
    /// device's software receives for trial `seed`.
    pub fn perturb(&self, seed: u64) -> Result<Signal> {
        self.perturb_with_scratch(seed, &mut TrialScratch::new())
    }

    /// [`perturb`](Self::perturb) with caller-owned scratch buffers: a
    /// worker looping over trials reuses one [`TrialScratch`] instead of
    /// re-allocating the pressure and capture workspaces per call.  The
    /// output is bit-identical to [`perturb`](Self::perturb).
    pub fn perturb_with_scratch(&self, seed: u64, scratch: &mut TrialScratch) -> Result<Signal> {
        let _stage = telemetry::span(telemetry::SPAN_STAGE_PERTURB);
        let clean: &Signal = match &self.paths {
            PreparedPaths::Attack(at_port) => at_port,
            PreparedPaths::Legitimate(variants) => {
                let wanted = talker_variant(seed);
                &variants
                    .iter()
                    .find(|(variant, _)| *variant == wanted)
                    .ok_or_else(|| {
                        format!(
                            "talker variant {wanted} (seed {seed}) was not prepared; \
                             pass every trial seed to PreparedCell::prepare"
                        )
                    })?
                    .1
            }
        };
        let mut pressure = std::mem::take(&mut scratch.pressure);
        pressure.clear();
        pressure.extend_from_slice(clean.samples());
        let mut pressure_at_port = Signal::new(pressure, clean.sample_rate_hz())?;
        {
            let _span = telemetry::span("perturb.ambient_noise");
            let noise = room_noise_pa(
                self.scenario.ambient_noise_spl_db,
                pressure_at_port.duration_s(),
                pressure_at_port.sample_rate_hz(),
                seed ^ 0xDEAD_BEEF,
            )?;
            pressure_at_port.mix(&noise)?;
        }
        let _span = telemetry::span("perturb.mic_capture");
        let recording =
            self.microphone
                .capture_with_scratch(&pressure_at_port, seed, &mut scratch.capture)?;
        scratch.pressure = pressure_at_port.into_samples();
        Ok(recording)
    }

    /// Stage 3: recognition, defense features and the optional trained
    /// detector, assembled into the trial's outcome.
    ///
    /// `recognizer` must have the command corpus enrolled; `seed` is
    /// echoed into [`TrialOutcome::seed`] so archives stay self-contained.
    pub fn evaluate(
        &self,
        recording: Signal,
        seed: u64,
        recognizer: &Recognizer,
        detector: Option<&LogisticRegression>,
    ) -> Result<TrialOutcome> {
        let _stage = telemetry::span(telemetry::SPAN_STAGE_EVALUATE);
        let recognition_span = telemetry::span("evaluate.recognition");
        let evaluation = recognizer.evaluate(&recording, self.command.id)?;
        drop(recognition_span);
        let word_accuracy = evaluation.word_accuracy;
        let accepted = evaluation.accepted;
        let recognized_words: Vec<String> = evaluation
            .word_recognition
            .into_iter()
            .filter(|(_, ok)| *ok)
            .map(|(word, _)| word)
            .collect();
        let features_span = telemetry::span("evaluate.defense_features");
        let defense_features = DefenseFeatures::extract(&recording)?;
        drop(features_span);
        let detection_probability = match detector {
            Some(model) => {
                let _span = telemetry::span("evaluate.detector");
                Some(model.predict_probability(&defense_features.to_vector())?)
            }
            None => None,
        };
        Ok(TrialOutcome {
            recording,
            accepted,
            word_accuracy,
            recognized_words,
            bystander_spl_db: self.leakage.as_ref().map(|leak| leak.audible_spl_db),
            power_shortfall_w: self.power_shortfall_w,
            seed,
            leakage: self.leakage.clone(),
            defense_features,
            detection_probability,
        })
    }

    /// Perturb + Evaluate for one trial seed — the shape campaign workers
    /// run after preparing (or being handed) the cell.
    pub fn run(
        &self,
        seed: u64,
        recognizer: &Recognizer,
        detector: Option<&LogisticRegression>,
    ) -> Result<TrialOutcome> {
        self.run_with_scratch(seed, recognizer, detector, &mut TrialScratch::new())
    }

    /// [`run`](Self::run) with caller-owned scratch buffers (see
    /// [`perturb_with_scratch`](Self::perturb_with_scratch)).
    pub fn run_with_scratch(
        &self,
        seed: u64,
        recognizer: &Recognizer,
        detector: Option<&LogisticRegression>,
        scratch: &mut TrialScratch,
    ) -> Result<TrialOutcome> {
        let recording = self.perturb_with_scratch(seed, scratch)?;
        self.evaluate(recording, seed, recognizer, detector)
    }
}

/// Per-worker scratch buffers threaded through the Perturb stage so the
/// hot trial loop reuses its allocations instead of growing and dropping
/// ~20 `Vec`s per trial.  Purely an allocation-reuse vehicle: results are
/// bit-identical with a fresh or a reused scratch.
#[derive(Debug, Default)]
pub struct TrialScratch {
    /// Pressure-waveform assembly buffer (clean path + ambient noise).
    pressure: Vec<f64>,
    /// Microphone front-end workspaces (spectrum + time-domain).
    capture: CaptureScratch,
}

impl TrialScratch {
    /// Creates an empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The attacker's baseband voice: the canonical TTS render, truncated,
/// with the adaptive attacker's shadow pre-compensation applied when the
/// scenario asks for it.
fn attack_voice(
    ctx: &PrepareContext,
    command: &VoiceCommand,
    scenario: &Scenario,
    cap_s: f64,
) -> Result<Signal> {
    let voice = ctx.voice(command, TalkerKey::Canonical, cap_s)?;
    if scenario.shadow_suppression > 0.0 {
        Ok(precompensated_baseband(
            &voice,
            scenario.shadow_suppression,
        )?)
    } else {
        Ok(voice)
    }
}

/// Propagates a 1 m-referenced pressure waveform from a source of
/// `aperture_m` to the target microphone: free field when the scenario has
/// no room, through the room's image-source response otherwise.
fn propagate_to_target(
    source_at_1m: &Signal,
    aperture_m: f64,
    scenario: &Scenario,
    room: Option<&RoomInstance>,
) -> Result<Signal> {
    let _span = telemetry::span("prepare.convolution");
    match room {
        None => Ok(propagate_from_aperture(
            source_at_1m,
            scenario.distance_m,
            aperture_m,
            &scenario.env,
        )?),
        Some(instance) => Ok(propagate_in_room(
            source_at_1m,
            &instance.target_rir(aperture_m)?,
            &scenario.env,
        )?),
    }
}

/// Propagates an attack build's emitted near field to the target
/// (aperture-aware, room-aware) and to the bystander (point source,
/// room-aware), analysing the leakage there.  Both products are
/// content-addressed off `build_key`, so a sweep that varies only trial
/// seeds or unrelated axes reuses them.
fn deliver_attack(
    build: &AttackBuild,
    build_key: &str,
    scenario: &Scenario,
    room: Option<&RoomInstance>,
) -> Result<(Arc<Signal>, LeakageReport)> {
    let prop_key = prepare_cache::target_propagation_key(build_key, build.aperture_m, scenario);
    let at_port = prepare_cache::get_or_build(ProductKind::Propagation, &prop_key, || {
        propagate_to_target(&build.near_field_at_1m, build.aperture_m, scenario, room)
    })?;
    let leak_key = prepare_cache::leakage_key(build_key, scenario);
    let leak = prepare_cache::get_or_build(ProductKind::Leakage, &leak_key, || {
        let _span = telemetry::span("prepare.leakage");
        let near = &build.near_field_at_1m;
        let bystander_field = match room {
            None => propagate(near, scenario.bystander_distance_m, &scenario.env)?,
            Some(instance) => propagate_in_room(near, &instance.bystander_rir()?, &scenario.env)?,
        };
        Ok(leakage_from_field(
            &bystander_field,
            scenario.bystander_distance_m,
            0.0,
        )?)
    })?;
    Ok((at_port, (*leak).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_speech::commands::corpus;

    fn quick_scenario(delivery: Delivery) -> Scenario {
        Scenario {
            delivery,
            max_voice_duration_s: 0.8,
            ..Scenario::default_attack()
        }
    }

    #[test]
    fn prepared_cell_is_reusable_and_matches_the_composed_wrapper() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 6,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let ctx = PrepareContext::new().unwrap();
        let prepared = PreparedCell::prepare(&ctx, command, &scenario, &[1, 2]).unwrap();
        // The same prepared cell serves multiple seeds; each equals the
        // one-shot wrapper for that seed, bit for bit.
        for seed in [1u64, 2] {
            let staged = prepared.run(seed, &recognizer, None).unwrap();
            let monolithic =
                crate::pipeline::run_trial(command, &scenario.with_seed(seed), &recognizer, None)
                    .unwrap();
            assert_eq!(staged, monolithic);
            assert_eq!(staged.seed, seed);
        }
        // Different seeds draw different noise: recordings differ.
        let a = prepared.perturb(1).unwrap();
        let b = prepared.perturb(2).unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn legitimate_variants_follow_the_seed_modulo_contract() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        });
        let ctx = PrepareContext::new().unwrap();
        // Seeds 3 and 11 share variant 3: one rendered path serves both.
        let prepared = PreparedCell::prepare(&ctx, command, &scenario, &[3, 11]).unwrap();
        let a = prepared.run(3, &recognizer, None).unwrap();
        let b = prepared
            .run(3 + NUM_TALKER_VARIANTS as u64, &recognizer, None)
            .unwrap();
        // Same talker, different noise draw.
        assert_eq!(a.seed, 3);
        assert_ne!(a.recording.samples(), b.recording.samples());
        // A seed whose variant was not prepared is a loud error, not a
        // silent wrong-talker trial.
        assert!(prepared.perturb(4).is_err());
    }

    #[test]
    fn prepare_rejects_bad_inputs() {
        let command = &corpus()[0];
        let ctx = PrepareContext::new().unwrap();
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        });
        assert!(PreparedCell::prepare(&ctx, command, &scenario, &[]).is_err());
        let bad = Scenario {
            shadow_suppression: 1.5,
            ..quick_scenario(Delivery::SingleSpeakerUltrasound {
                power_w: 10.0,
                carrier_hz: 40_000.0,
            })
        };
        assert!(PreparedCell::prepare(&ctx, command, &bad, &[1]).is_err());
    }

    #[test]
    fn shadow_suppression_changes_the_attack_but_not_the_legit_path() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let ctx = PrepareContext::new().unwrap();
        let oblivious = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 6,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let adaptive = Scenario {
            shadow_suppression: 1.0,
            ..oblivious.clone()
        };
        let plain = PreparedCell::prepare(&ctx, command, &oblivious, &[1])
            .unwrap()
            .run(1, &recognizer, None)
            .unwrap();
        let suppressed = PreparedCell::prepare(&ctx, command, &adaptive, &[1])
            .unwrap()
            .run(1, &recognizer, None)
            .unwrap();
        assert_ne!(plain.recording.samples(), suppressed.recording.samples());
        // Suppression shrinks the shadow feature the detector keys on.
        assert!(
            suppressed.defense_features.shadow_correlation
                < plain.defense_features.shadow_correlation
        );
    }
}
