//! The end-to-end pipeline: one trial of one scenario.

use crate::scenario::{Delivery, Scenario};
use crate::Result;
use ivc_acoustics::array::SpeakerArray;
use ivc_acoustics::noise::room_noise_pa;
use ivc_acoustics::propagation::propagate;
use ivc_acoustics::speaker::UltrasonicSpeaker;
use ivc_acoustics::spl::spl_db_to_pressure;
use ivc_attack::baseband::BasebandConfig;
use ivc_attack::leakage::{estimate_leakage, LeakageReport};
use ivc_attack::multispeaker::{single_speaker_element_drives, MultiSpeakerAttack};
use ivc_attack::single::SingleSpeakerAttack;
use ivc_defense::classifier::LogisticRegression;
use ivc_defense::features::DefenseFeatures;
use ivc_dsp::signal::Signal;
use ivc_speech::commands::VoiceCommand;
use ivc_speech::recognizer::Recognizer;
use ivc_speech::synthesis::{SpeakerProfile, Synthesizer};

/// Everything measured in one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The digital recording the device's software received.
    pub recording: Signal,
    /// Did the recogniser accept the recording as the intended command?
    pub accepted: bool,
    /// Word accuracy against the intended command's template.
    pub word_accuracy: f64,
    /// The intended command's words that were recognised, in word order
    /// (`word_accuracy` is `recognized_words.len() / command.num_words()`).
    pub recognized_words: Vec<String>,
    /// Speaker-side leakage report (attack deliveries only).
    pub leakage: Option<LeakageReport>,
    /// Unweighted audible-band SPL a bystander near the source would hear,
    /// in dB (`None` for legitimate deliveries) — the leakage report's
    /// headline number, flattened for aggregation.
    pub bystander_spl_db: Option<f64>,
    /// Electrical budget the delivery asked for but could not place because
    /// per-element power ratings bound (0 when everything fit).
    pub power_shortfall_w: f64,
    /// The master seed the trial ran with (copied from the scenario, so a
    /// result archive is self-contained).
    pub seed: u64,
    /// The defense's features for this recording.
    pub defense_features: DefenseFeatures,
    /// The detector's attack probability, if a trained detector was supplied.
    pub detection_probability: Option<f64>,
}

/// Runs one trial of `scenario` injecting (or speaking) `command`.
///
/// `recognizer` must have the command corpus enrolled; `detector` is
/// optional — when present, its probability output is included.
pub fn run_trial(
    command: &VoiceCommand,
    scenario: &Scenario,
    recognizer: &Recognizer,
    detector: Option<&LogisticRegression>,
) -> Result<TrialOutcome> {
    // 1. Render the voice command (the attacker's TTS voice, or the
    //    legitimate talker's).
    let synth = Synthesizer::new(48_000.0)?;
    let profile = match scenario.delivery {
        Delivery::Legitimate { .. } => SpeakerProfile::variant(scenario.seed as usize % 8),
        _ => SpeakerProfile::canonical(),
    };
    let utterance = synth.render(command, &profile)?;
    let voice = if utterance.signal.duration_s() > scenario.max_voice_duration_s {
        utterance
            .signal
            .slice_seconds(0.0, scenario.max_voice_duration_s)
    } else {
        utterance.signal.clone()
    };

    // 2. Deliver it to the microphone port as a pressure waveform.
    let (mut pressure_at_port, leakage, power_shortfall_w) = match scenario.delivery {
        Delivery::Legitimate { talker_spl_db } => {
            let rms = voice.rms().max(1e-12);
            let pressure_at_1m = voice.scaled(spl_db_to_pressure(talker_spl_db) / rms);
            (
                propagate(&pressure_at_1m, scenario.distance_m, &scenario.env)?,
                None,
                0.0,
            )
        }
        Delivery::SingleSpeakerUltrasound {
            power_w,
            carrier_hz,
        } => {
            let attack =
                SingleSpeakerAttack::build(&voice, carrier_hz, 0.9, &BasebandConfig::default())?;
            let speaker = UltrasonicSpeaker::default();
            let array = SpeakerArray::new(speaker.clone(), 1, 0.03)?;
            let placed_w = power_w.min(speaker.max_power_w);
            let drives = single_speaker_element_drives(&attack, placed_w)?;
            let leak = estimate_leakage(
                &array,
                &drives,
                scenario.bystander_distance_m,
                &scenario.env,
                0.0,
            )?;
            (
                array.field_at_target(&drives, scenario.distance_m, &scenario.env)?,
                Some(leak),
                power_w - placed_w,
            )
        }
        Delivery::ArrayUltrasound {
            num_elements,
            total_power_w,
            carrier_hz,
        } => {
            let speaker = UltrasonicSpeaker::default();
            let array = SpeakerArray::new(speaker.clone(), num_elements.max(1), 0.03)?;
            let (drives, shortfall_w) = if num_elements <= 1 {
                let attack = SingleSpeakerAttack::build(
                    &voice,
                    carrier_hz,
                    0.9,
                    &BasebandConfig::default(),
                )?;
                let placed_w = total_power_w.min(speaker.max_power_w);
                (
                    single_speaker_element_drives(&attack, placed_w)?,
                    total_power_w - placed_w,
                )
            } else {
                // `build_balanced` sizes the carrier element group against
                // the budget, so big arrays keep their carrier-to-sideband
                // balance instead of starving the carrier at one element's
                // rating (the old E-A2 61-element anomaly).
                let attack = MultiSpeakerAttack::build_balanced(
                    &voice,
                    carrier_hz,
                    num_elements,
                    total_power_w,
                    0.3,
                    speaker.max_power_w,
                    &BasebandConfig::default(),
                )?;
                let allocation = attack.allocate_power(total_power_w, 0.3, speaker.max_power_w)?;
                (allocation.drives, allocation.shortfall_w)
            };
            let leak = estimate_leakage(
                &array,
                &drives,
                scenario.bystander_distance_m,
                &scenario.env,
                0.0,
            )?;
            (
                array.field_at_target(&drives, scenario.distance_m, &scenario.env)?,
                Some(leak),
                shortfall_w,
            )
        }
    };

    // 3. Ambient noise and capture.
    let noise = room_noise_pa(
        scenario.ambient_noise_spl_db,
        pressure_at_port.duration_s(),
        pressure_at_port.sample_rate_hz(),
        scenario.seed ^ 0xDEAD_BEEF,
    )?;
    pressure_at_port.mix(&noise)?;
    let recording = scenario
        .device
        .microphone()
        .capture(&pressure_at_port, scenario.seed)?;

    // 4. Recognition and defense.  `evaluate` prepares and featurises the
    // recording once and owns the acceptance rule, so the pipeline cannot
    // drift from `Recognizer::command_accepted`.
    let evaluation = recognizer.evaluate(&recording, command.id)?;
    let word_accuracy = evaluation.word_accuracy;
    let accepted = evaluation.accepted;
    let recognized_words: Vec<String> = evaluation
        .word_recognition
        .into_iter()
        .filter(|(_, ok)| *ok)
        .map(|(word, _)| word)
        .collect();
    let defense_features = DefenseFeatures::extract(&recording)?;
    let detection_probability = match detector {
        Some(model) => Some(model.predict_probability(&defense_features.to_vector())?),
        None => None,
    };

    Ok(TrialOutcome {
        recording,
        accepted,
        word_accuracy,
        recognized_words,
        bystander_spl_db: leakage.as_ref().map(|leak| leak.audible_spl_db),
        power_shortfall_w,
        seed: scenario.seed,
        leakage,
        defense_features,
        detection_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_speech::commands::corpus;

    fn quick_scenario(delivery: Delivery) -> Scenario {
        Scenario {
            delivery,
            max_voice_duration_s: 1.0,
            ..Scenario::default_attack()
        }
    }

    #[test]
    fn legitimate_delivery_is_accepted_and_not_detected_as_attack() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        });
        let outcome = run_trial(command, &scenario, &recognizer, None).unwrap();
        assert!(outcome.leakage.is_none());
        assert!(outcome.bystander_spl_db.is_none());
        assert!(outcome.detection_probability.is_none());
        assert!(
            outcome.word_accuracy > 0.5,
            "accuracy {}",
            outcome.word_accuracy
        );
        // The aggregation fields are consistent with the headline numbers.
        assert_eq!(outcome.seed, scenario.seed);
        assert_eq!(outcome.power_shortfall_w, 0.0);
        assert!(
            (outcome.word_accuracy
                - outcome.recognized_words.len() as f64 / command.num_words() as f64)
                .abs()
                < 1e-12
        );
        assert!(outcome.recording.len() > 1_000);
    }

    #[test]
    fn array_attack_at_close_range_is_accepted_and_leaves_a_trace() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 6,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let outcome = run_trial(command, &scenario, &recognizer, None).unwrap();
        assert!(outcome.leakage.is_some());
        assert_eq!(
            outcome.bystander_spl_db,
            outcome.leakage.as_ref().map(|l| l.audible_spl_db)
        );
        // 60 W over 6 elements fits every rating: nothing is lost.
        assert_eq!(outcome.power_shortfall_w, 0.0);
        assert!(
            outcome.word_accuracy > 0.4,
            "accuracy {}",
            outcome.word_accuracy
        );
        // The defense trace is present even when the attack succeeds.
        assert!(outcome.defense_features.shadow_correlation > 0.2);
    }

    #[test]
    fn attack_fails_at_extreme_distance() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let near = quick_scenario(Delivery::SingleSpeakerUltrasound {
            power_w: 25.0,
            carrier_hz: 40_000.0,
        });
        let far = near.at_distance(30.0);
        let outcome_near = run_trial(command, &near.at_distance(1.0), &recognizer, None).unwrap();
        let outcome_far = run_trial(command, &far, &recognizer, None).unwrap();
        assert!(
            outcome_near.word_accuracy > outcome_far.word_accuracy,
            "near {} vs far {}",
            outcome_near.word_accuracy,
            outcome_far.word_accuracy
        );
        assert!(!outcome_far.accepted);
    }
}
