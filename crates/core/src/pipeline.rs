//! The end-to-end pipeline: one trial of one scenario.

use crate::scenario::{Delivery, Scenario};
use crate::Result;
use ivc_acoustics::array::{ElementDrive, SpeakerArray};
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::noise::room_noise_pa;
use ivc_acoustics::propagation::{propagate, propagate_from_aperture};
use ivc_acoustics::speaker::UltrasonicSpeaker;
use ivc_acoustics::spl::spl_db_to_pressure;
use ivc_attack::baseband::BasebandConfig;
use ivc_attack::leakage::{leakage_from_field, LeakageReport};
use ivc_attack::multispeaker::{single_speaker_element_drives, MultiSpeakerAttack};
use ivc_attack::single::SingleSpeakerAttack;
use ivc_defense::classifier::LogisticRegression;
use ivc_defense::features::DefenseFeatures;
use ivc_dsp::signal::Signal;
use ivc_room::{propagate_in_room, RoomInstance};
use ivc_speech::commands::VoiceCommand;
use ivc_speech::recognizer::Recognizer;
use ivc_speech::synthesis::{SpeakerProfile, Synthesizer};

/// Everything measured in one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The digital recording the device's software received.
    pub recording: Signal,
    /// Did the recogniser accept the recording as the intended command?
    pub accepted: bool,
    /// Word accuracy against the intended command's template.
    pub word_accuracy: f64,
    /// The intended command's words that were recognised, in word order
    /// (`word_accuracy` is `recognized_words.len() / command.num_words()`).
    pub recognized_words: Vec<String>,
    /// Speaker-side leakage report (attack deliveries only).
    pub leakage: Option<LeakageReport>,
    /// Unweighted audible-band SPL a bystander near the source would hear,
    /// in dB (`None` for legitimate deliveries) — the leakage report's
    /// headline number, flattened for aggregation.
    pub bystander_spl_db: Option<f64>,
    /// Electrical budget the delivery asked for but could not place because
    /// per-element power ratings bound (0 when everything fit).
    pub power_shortfall_w: f64,
    /// The master seed the trial ran with (copied from the scenario, so a
    /// result archive is self-contained).
    pub seed: u64,
    /// The defense's features for this recording.
    pub defense_features: DefenseFeatures,
    /// The detector's attack probability, if a trained detector was supplied.
    pub detection_probability: Option<f64>,
}

/// Runs one trial of `scenario` injecting (or speaking) `command`.
///
/// `recognizer` must have the command corpus enrolled; `detector` is
/// optional — when present, its probability output is included.
pub fn run_trial(
    command: &VoiceCommand,
    scenario: &Scenario,
    recognizer: &Recognizer,
    detector: Option<&LogisticRegression>,
) -> Result<TrialOutcome> {
    // 1. Render the voice command (the attacker's TTS voice, or the
    //    legitimate talker's).
    let synth = Synthesizer::new(48_000.0)?;
    let profile = match scenario.delivery {
        Delivery::Legitimate { .. } => SpeakerProfile::variant(scenario.seed as usize % 8),
        _ => SpeakerProfile::canonical(),
    };
    let utterance = synth.render(command, &profile)?;
    let voice = if utterance.signal.duration_s() > scenario.max_voice_duration_s {
        utterance
            .signal
            .slice_seconds(0.0, scenario.max_voice_duration_s)
    } else {
        utterance.signal.clone()
    };

    // 2. Deliver it to the microphone port as a pressure waveform.  When
    //    the scenario names a room, both the attack path to the target
    //    microphone and the leak path to the bystander go through the
    //    room's image-source model; otherwise the historical free-field
    //    channel is used (the `Anechoic` preset reproduces it bit for
    //    bit, pinned by a regression test below).
    let room = match scenario.room {
        None => None,
        Some(preset) => {
            Some(preset.instantiate(scenario.distance_m, scenario.bystander_distance_m)?)
        }
    };
    let (mut pressure_at_port, leakage, power_shortfall_w) = match scenario.delivery {
        Delivery::Legitimate { talker_spl_db } => {
            let rms = voice.rms().max(1e-12);
            let pressure_at_1m = voice.scaled(spl_db_to_pressure(talker_spl_db) / rms);
            let at_port = propagate_to_target(&pressure_at_1m, 0.0, scenario, room.as_ref())?;
            (at_port, None, 0.0)
        }
        Delivery::SingleSpeakerUltrasound {
            power_w,
            carrier_hz,
        } => {
            let attack =
                SingleSpeakerAttack::build(&voice, carrier_hz, 0.9, &BasebandConfig::default())?;
            let speaker = UltrasonicSpeaker::default();
            let array = SpeakerArray::new(speaker.clone(), 1, 0.03)?;
            let placed_w = power_w.min(speaker.max_power_w);
            let drives = single_speaker_element_drives(&attack, placed_w)?;
            let (at_port, leak) = deliver_attack(&array, &drives, scenario, room.as_ref())?;
            (at_port, Some(leak), power_w - placed_w)
        }
        Delivery::ArrayUltrasound {
            num_elements,
            total_power_w,
            carrier_hz,
        } => {
            let speaker = UltrasonicSpeaker::default();
            let array = SpeakerArray::new(speaker.clone(), num_elements.max(1), 0.03)?;
            let (drives, shortfall_w) = if num_elements <= 1 {
                let attack = SingleSpeakerAttack::build(
                    &voice,
                    carrier_hz,
                    0.9,
                    &BasebandConfig::default(),
                )?;
                let placed_w = total_power_w.min(speaker.max_power_w);
                (
                    single_speaker_element_drives(&attack, placed_w)?,
                    total_power_w - placed_w,
                )
            } else {
                // `build_balanced` sizes the carrier element group against
                // the budget, so big arrays keep their carrier-to-sideband
                // balance instead of starving the carrier at one element's
                // rating (the old E-A2 61-element anomaly).
                let attack = MultiSpeakerAttack::build_balanced(
                    &voice,
                    carrier_hz,
                    num_elements,
                    total_power_w,
                    0.3,
                    speaker.max_power_w,
                    &BasebandConfig::default(),
                )?;
                let allocation = attack.allocate_power(total_power_w, 0.3, speaker.max_power_w)?;
                (allocation.drives, allocation.shortfall_w)
            };
            let (at_port, leak) = deliver_attack(&array, &drives, scenario, room.as_ref())?;
            (at_port, Some(leak), shortfall_w)
        }
    };

    // 3. Ambient noise and capture.
    let noise = room_noise_pa(
        scenario.ambient_noise_spl_db,
        pressure_at_port.duration_s(),
        pressure_at_port.sample_rate_hz(),
        scenario.seed ^ 0xDEAD_BEEF,
    )?;
    pressure_at_port.mix(&noise)?;
    let recording = scenario
        .device
        .microphone()
        .capture(&pressure_at_port, scenario.seed)?;

    // 4. Recognition and defense.  `evaluate` prepares and featurises the
    // recording once and owns the acceptance rule, so the pipeline cannot
    // drift from `Recognizer::command_accepted`.
    let evaluation = recognizer.evaluate(&recording, command.id)?;
    let word_accuracy = evaluation.word_accuracy;
    let accepted = evaluation.accepted;
    let recognized_words: Vec<String> = evaluation
        .word_recognition
        .into_iter()
        .filter(|(_, ok)| *ok)
        .map(|(word, _)| word)
        .collect();
    let defense_features = DefenseFeatures::extract(&recording)?;
    let detection_probability = match detector {
        Some(model) => Some(model.predict_probability(&defense_features.to_vector())?),
        None => None,
    };

    Ok(TrialOutcome {
        recording,
        accepted,
        word_accuracy,
        recognized_words,
        bystander_spl_db: leakage.as_ref().map(|leak| leak.audible_spl_db),
        power_shortfall_w,
        seed: scenario.seed,
        leakage,
        defense_features,
        detection_probability,
    })
}

/// Propagates a 1 m-referenced pressure waveform from a source of
/// `aperture_m` to the target microphone: free field when the scenario has
/// no room, through the room's image-source response otherwise.
fn propagate_to_target(
    source_at_1m: &Signal,
    aperture_m: f64,
    scenario: &Scenario,
    room: Option<&RoomInstance>,
) -> Result<Signal> {
    match room {
        None => Ok(propagate_from_aperture(
            source_at_1m,
            scenario.distance_m,
            aperture_m,
            &scenario.env,
        )?),
        Some(instance) => Ok(propagate_in_room(
            source_at_1m,
            &instance.target_rir(aperture_m)?,
            &scenario.env,
        )?),
    }
}

/// Emits the drives once, then propagates to the target (aperture-aware,
/// room-aware) and to the bystander (point source, room-aware) and
/// analyses the leakage there.
fn deliver_attack(
    array: &SpeakerArray,
    drives: &[ElementDrive],
    scenario: &Scenario,
    room: Option<&RoomInstance>,
) -> Result<(Signal, LeakageReport)> {
    let near = array.emitted_field_at_1m(drives)?;
    let at_port = propagate_to_target(&near, array.aperture_m(), scenario, room)?;
    let env: &AirEnvironment = &scenario.env;
    let bystander_field = match room {
        None => propagate(&near, scenario.bystander_distance_m, env)?,
        Some(instance) => propagate_in_room(&near, &instance.bystander_rir()?, env)?,
    };
    let leak = leakage_from_field(&bystander_field, scenario.bystander_distance_m, 0.0)?;
    Ok((at_port, leak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_speech::commands::corpus;

    fn quick_scenario(delivery: Delivery) -> Scenario {
        Scenario {
            delivery,
            max_voice_duration_s: 1.0,
            ..Scenario::default_attack()
        }
    }

    #[test]
    fn legitimate_delivery_is_accepted_and_not_detected_as_attack() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        });
        let outcome = run_trial(command, &scenario, &recognizer, None).unwrap();
        assert!(outcome.leakage.is_none());
        assert!(outcome.bystander_spl_db.is_none());
        assert!(outcome.detection_probability.is_none());
        assert!(
            outcome.word_accuracy > 0.5,
            "accuracy {}",
            outcome.word_accuracy
        );
        // The aggregation fields are consistent with the headline numbers.
        assert_eq!(outcome.seed, scenario.seed);
        assert_eq!(outcome.power_shortfall_w, 0.0);
        assert!(
            (outcome.word_accuracy
                - outcome.recognized_words.len() as f64 / command.num_words() as f64)
                .abs()
                < 1e-12
        );
        assert!(outcome.recording.len() > 1_000);
    }

    #[test]
    fn array_attack_at_close_range_is_accepted_and_leaves_a_trace() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 6,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let outcome = run_trial(command, &scenario, &recognizer, None).unwrap();
        assert!(outcome.leakage.is_some());
        assert_eq!(
            outcome.bystander_spl_db,
            outcome.leakage.as_ref().map(|l| l.audible_spl_db)
        );
        // 60 W over 6 elements fits every rating: nothing is lost.
        assert_eq!(outcome.power_shortfall_w, 0.0);
        assert!(
            outcome.word_accuracy > 0.4,
            "accuracy {}",
            outcome.word_accuracy
        );
        // The defense trace is present even when the attack succeeds.
        assert!(outcome.defense_features.shadow_correlation > 0.2);
    }

    #[test]
    fn anechoic_room_is_bit_identical_to_free_field() {
        // The satellite guarantee of the room subsystem: per-tap delays
        // and gains are applied exactly like the free-field path, so a
        // room that reflects nothing *is* the free-field trial — same
        // recording bytes, same leakage, same verdict.
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        for delivery in [
            Delivery::Legitimate {
                talker_spl_db: 68.0,
            },
            Delivery::SingleSpeakerUltrasound {
                power_w: 18.7,
                carrier_hz: 40_000.0,
            },
            Delivery::ArrayUltrasound {
                num_elements: 6,
                total_power_w: 60.0,
                carrier_hz: 40_000.0,
            },
        ] {
            let free_field = quick_scenario(delivery);
            let anechoic = free_field.in_room(Some(ivc_room::RoomPreset::Anechoic));
            let a = run_trial(command, &free_field, &recognizer, None).unwrap();
            let b = run_trial(command, &anechoic, &recognizer, None).unwrap();
            assert_eq!(
                a.recording.samples(),
                b.recording.samples(),
                "recordings diverge for {delivery:?}"
            );
            assert_eq!(a.word_accuracy, b.word_accuracy);
            assert_eq!(a.leakage, b.leakage);
        }
    }

    #[test]
    fn reverberant_room_changes_the_trial_and_occlusion_guards_the_leak() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let base = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let free = run_trial(command, &base, &recognizer, None).unwrap();
        let office = run_trial(
            command,
            &base.in_room(Some(ivc_room::RoomPreset::Office)),
            &recognizer,
            None,
        )
        .unwrap();
        // The office's reflections change the recording (but the trial
        // still completes and produces a leakage estimate).
        assert_ne!(free.recording.samples(), office.recording.samples());
        assert!(office.leakage.is_some());

        // Behind the doorway partition the bystander hears far less.
        let doorway = run_trial(
            command,
            &base.in_room(Some(ivc_room::RoomPreset::ThroughDoorway)),
            &recognizer,
            None,
        )
        .unwrap();
        let free_leak = free.bystander_spl_db.unwrap();
        let doorway_leak = doorway.bystander_spl_db.unwrap();
        assert!(
            doorway_leak < free_leak - 10.0,
            "doorway leak {doorway_leak} dB vs free-field {free_leak} dB"
        );
    }

    #[test]
    fn room_that_cannot_host_the_scenario_is_rejected() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        })
        .in_room(Some(ivc_room::RoomPreset::Office))
        .at_distance(7.0);
        assert!(run_trial(command, &scenario, &recognizer, None).is_err());
    }

    #[test]
    fn attack_fails_at_extreme_distance() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let near = quick_scenario(Delivery::SingleSpeakerUltrasound {
            power_w: 25.0,
            carrier_hz: 40_000.0,
        });
        let far = near.at_distance(30.0);
        let outcome_near = run_trial(command, &near.at_distance(1.0), &recognizer, None).unwrap();
        let outcome_far = run_trial(command, &far, &recognizer, None).unwrap();
        assert!(
            outcome_near.word_accuracy > outcome_far.word_accuracy,
            "near {} vs far {}",
            outcome_near.word_accuracy,
            outcome_far.word_accuracy
        );
        assert!(!outcome_far.accepted);
    }
}
