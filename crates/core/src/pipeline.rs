//! The end-to-end pipeline: one trial of one scenario.
//!
//! Since the staged refactor this module is a thin façade: the work lives
//! in [`crate::stages`] (Prepare → Perturb → Evaluate), and [`run_trial`]
//! composes the three stages for a single `(scenario, seed)`.  Campaigns
//! bypass the wrapper and share one [`crate::stages::PreparedCell`] across
//! all trials of a cell.

use crate::scenario::Scenario;
use crate::stages::{PrepareContext, PreparedCell};
use crate::Result;
use ivc_attack::leakage::LeakageReport;
use ivc_defense::classifier::LogisticRegression;
use ivc_defense::features::DefenseFeatures;
use ivc_dsp::signal::Signal;
use ivc_speech::commands::VoiceCommand;
use ivc_speech::recognizer::Recognizer;

/// Everything measured in one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The digital recording the device's software received.
    pub recording: Signal,
    /// Did the recogniser accept the recording as the intended command?
    pub accepted: bool,
    /// Word accuracy against the intended command's template.
    pub word_accuracy: f64,
    /// The intended command's words that were recognised, in word order
    /// (`word_accuracy` is `recognized_words.len() / command.num_words()`).
    pub recognized_words: Vec<String>,
    /// Speaker-side leakage report (attack deliveries only).
    pub leakage: Option<LeakageReport>,
    /// Unweighted audible-band SPL a bystander near the source would hear,
    /// in dB (`None` for legitimate deliveries) — the leakage report's
    /// headline number, flattened for aggregation.
    pub bystander_spl_db: Option<f64>,
    /// Electrical budget the delivery asked for but could not place because
    /// per-element power ratings bound (0 when everything fit).
    pub power_shortfall_w: f64,
    /// The master seed the trial ran with (copied from the scenario, so a
    /// result archive is self-contained).
    pub seed: u64,
    /// The defense's features for this recording.
    pub defense_features: DefenseFeatures,
    /// The detector's attack probability, if a trained detector was supplied.
    pub detection_probability: Option<f64>,
}

/// Runs one trial of `scenario` injecting (or speaking) `command`:
/// Prepare → Perturb → Evaluate composed for the scenario's own seed.
///
/// `recognizer` must have the command corpus enrolled; `detector` is
/// optional — when present, its probability output is included.
pub fn run_trial(
    command: &VoiceCommand,
    scenario: &Scenario,
    recognizer: &Recognizer,
    detector: Option<&LogisticRegression>,
) -> Result<TrialOutcome> {
    let ctx = PrepareContext::new()?;
    let prepared = PreparedCell::prepare(&ctx, command, scenario, &[scenario.seed])?;
    prepared.run(scenario.seed, recognizer, detector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Delivery;
    use ivc_speech::commands::corpus;

    fn quick_scenario(delivery: Delivery) -> Scenario {
        Scenario {
            delivery,
            max_voice_duration_s: 1.0,
            ..Scenario::default_attack()
        }
    }

    #[test]
    fn legitimate_delivery_is_accepted_and_not_detected_as_attack() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        });
        let outcome = run_trial(command, &scenario, &recognizer, None).unwrap();
        assert!(outcome.leakage.is_none());
        assert!(outcome.bystander_spl_db.is_none());
        assert!(outcome.detection_probability.is_none());
        assert!(
            outcome.word_accuracy > 0.5,
            "accuracy {}",
            outcome.word_accuracy
        );
        // The aggregation fields are consistent with the headline numbers.
        assert_eq!(outcome.seed, scenario.seed);
        assert_eq!(outcome.power_shortfall_w, 0.0);
        assert!(
            (outcome.word_accuracy
                - outcome.recognized_words.len() as f64 / command.num_words() as f64)
                .abs()
                < 1e-12
        );
        assert!(outcome.recording.len() > 1_000);
    }

    #[test]
    fn array_attack_at_close_range_is_accepted_and_leaves_a_trace() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 6,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let outcome = run_trial(command, &scenario, &recognizer, None).unwrap();
        assert!(outcome.leakage.is_some());
        assert_eq!(
            outcome.bystander_spl_db,
            outcome.leakage.as_ref().map(|l| l.audible_spl_db)
        );
        // 60 W over 6 elements fits every rating: nothing is lost.
        assert_eq!(outcome.power_shortfall_w, 0.0);
        assert!(
            outcome.word_accuracy > 0.4,
            "accuracy {}",
            outcome.word_accuracy
        );
        // The defense trace is present even when the attack succeeds.
        assert!(outcome.defense_features.shadow_correlation > 0.2);
    }

    #[test]
    fn anechoic_room_is_bit_identical_to_free_field() {
        // The satellite guarantee of the room subsystem: per-tap delays
        // and gains are applied exactly like the free-field path, so a
        // room that reflects nothing *is* the free-field trial — same
        // recording bytes, same leakage, same verdict.
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        for delivery in [
            Delivery::Legitimate {
                talker_spl_db: 68.0,
            },
            Delivery::SingleSpeakerUltrasound {
                power_w: 18.7,
                carrier_hz: 40_000.0,
            },
            Delivery::ArrayUltrasound {
                num_elements: 6,
                total_power_w: 60.0,
                carrier_hz: 40_000.0,
            },
        ] {
            let free_field = quick_scenario(delivery);
            let anechoic = free_field.in_room(Some(ivc_room::RoomPreset::Anechoic));
            let a = run_trial(command, &free_field, &recognizer, None).unwrap();
            let b = run_trial(command, &anechoic, &recognizer, None).unwrap();
            assert_eq!(
                a.recording.samples(),
                b.recording.samples(),
                "recordings diverge for {delivery:?}"
            );
            assert_eq!(a.word_accuracy, b.word_accuracy);
            assert_eq!(a.leakage, b.leakage);
        }
    }

    #[test]
    fn reverberant_room_changes_the_trial_and_occlusion_guards_the_leak() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let base = quick_scenario(Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        });
        let free = run_trial(command, &base, &recognizer, None).unwrap();
        let office = run_trial(
            command,
            &base.in_room(Some(ivc_room::RoomPreset::Office)),
            &recognizer,
            None,
        )
        .unwrap();
        // The office's reflections change the recording (but the trial
        // still completes and produces a leakage estimate).
        assert_ne!(free.recording.samples(), office.recording.samples());
        assert!(office.leakage.is_some());

        // Behind the doorway partition the bystander hears far less.
        let doorway = run_trial(
            command,
            &base.in_room(Some(ivc_room::RoomPreset::ThroughDoorway)),
            &recognizer,
            None,
        )
        .unwrap();
        let free_leak = free.bystander_spl_db.unwrap();
        let doorway_leak = doorway.bystander_spl_db.unwrap();
        assert!(
            doorway_leak < free_leak - 10.0,
            "doorway leak {doorway_leak} dB vs free-field {free_leak} dB"
        );
    }

    #[test]
    fn room_that_cannot_host_the_scenario_is_rejected() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let scenario = quick_scenario(Delivery::Legitimate {
            talker_spl_db: 68.0,
        })
        .in_room(Some(ivc_room::RoomPreset::Office))
        .at_distance(7.0);
        assert!(run_trial(command, &scenario, &recognizer, None).is_err());
    }

    #[test]
    fn attack_fails_at_extreme_distance() {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        let near = quick_scenario(Delivery::SingleSpeakerUltrasound {
            power_w: 25.0,
            carrier_hz: 40_000.0,
        });
        let far = near.at_distance(30.0);
        let outcome_near = run_trial(command, &near.at_distance(1.0), &recognizer, None).unwrap();
        let outcome_far = run_trial(command, &far, &recognizer, None).unwrap();
        assert!(
            outcome_near.word_accuracy > outcome_far.word_accuracy,
            "near {} vs far {}",
            outcome_near.word_accuracy,
            outcome_far.word_accuracy
        );
        assert!(!outcome_far.accepted);
    }
}
