//! # ivc-core — end-to-end scenarios and experiments
//!
//! This crate wires the substrates together into the pipeline every
//! experiment runs:
//!
//! ```text
//! voice command ──► attack construction ──► speaker array ──► air ──► victim microphone
//!                                                                        │
//!                       speech recogniser ◄── digital recording ◄────────┤
//!                       defense detector  ◄──────────────────────────────┘
//! ```
//!
//! * [`scenario`] — the description of one experimental setup (device,
//!   distance, environment, ambient noise, how the command is delivered).
//! * [`stages`] — the staged trial pipeline (**Prepare → Perturb →
//!   Evaluate**): the cell-invariant work is packaged once as an immutable
//!   [`stages::PreparedCell`] and shared across all trials of a campaign
//!   cell.
//! * [`pipeline`] — the compose-all wrapper: [`pipeline::run_trial`] runs
//!   the three stages for one `(scenario, seed)` and reports whether the
//!   command was accepted, its word accuracy, the speaker-side leakage and
//!   the defense verdict.
//! * [`results`] — small table/series containers used by the reproduction
//!   harness to print paper-style outputs (serialisable with `serde`).
//! * [`json`] — a dependency-free JSON value model, writer and parser used
//!   to archive experiment reports (the vendored `serde` stand-in has no
//!   data model, so archival gets its own deterministic layer).
//! * [`columns`] — length-prefixed little-endian column primitives for
//!   compact binary archives (the trial-record columnar format in
//!   `ivc-experiments` is built on them).
//! * [`telemetry`] — process-wide spans, counters and duration histograms
//!   instrumenting the stages and everything above them; overhead-free
//!   when disabled and never part of archived bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod json;
pub mod pipeline;
pub mod prepare_cache;
pub mod results;
pub mod scenario;
pub mod stages;
pub mod telemetry;

pub use json::JsonValue;
pub use pipeline::{run_trial, TrialOutcome};
pub use results::{Series, Table};
pub use scenario::{Delivery, Scenario};
pub use stages::{PrepareContext, PreparedCell, TrialScratch};

/// Convenience error alias: the pipeline surfaces whichever layer failed.
pub type Error = Box<dyn std::error::Error + Send + Sync>;
/// Convenience result alias used by the pipeline.
pub type Result<T> = std::result::Result<T, Error>;
