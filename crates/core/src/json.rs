//! A dependency-free JSON data model, writer and parser.
//!
//! The vendored `serde` stand-in provides marker traits only (no data
//! model), so result archival needs its own serialisation layer.  This
//! module is that layer: a small [`JsonValue`] tree, a deterministic writer
//! and a recursive-descent parser, used by `ivc-experiments` to archive
//! campaign reports.
//!
//! Determinism is a hard requirement — the campaign engine promises
//! byte-identical reports regardless of worker count — so the writer makes
//! no formatting decisions that depend on anything but the value tree:
//!
//! * objects preserve insertion order (they are association lists, not
//!   hash maps),
//! * numbers use Rust's shortest-round-trip `f64` formatting, with whole
//!   numbers written as integers, and
//! * non-finite numbers (which JSON cannot represent) are written as
//!   `null` by [`JsonValue::number`], never produced implicitly.

use std::fmt;

/// One node of a JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has a single numeric type).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as an ordered association list (insertion order is
    /// preserved, which keeps the writer deterministic).
    Object(Vec<(String, JsonValue)>),
}

/// Error raised when parsing malformed JSON text.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// Byte offset at which the parse failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// A number, mapping the non-finite values JSON cannot express to
    /// `null` (the reader maps them back via [`JsonValue::as_f64`]'s
    /// `None`).
    pub fn number(value: f64) -> JsonValue {
        if value.is_finite() {
            JsonValue::Number(value)
        } else {
            JsonValue::Null
        }
    }

    /// A string value.
    pub fn string(value: impl Into<String>) -> JsonValue {
        JsonValue::String(value.into())
    }

    /// An array of numbers.
    pub fn number_array(values: &[f64]) -> JsonValue {
        JsonValue::Array(values.iter().map(|v| JsonValue::number(*v)).collect())
    }

    /// An array of strings.
    pub fn string_array<S: AsRef<str>>(values: &[S]) -> JsonValue {
        JsonValue::Array(
            values
                .iter()
                .map(|v| JsonValue::String(v.as_ref().to_string()))
                .collect(),
        )
    }

    /// `self` as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `self` as a finite f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// `self` as a usize, if it is a non-negative whole number within
    /// f64's exact-integer range (beyond 2^53 a JSON number can no longer
    /// name the integer it was meant to carry, so it is rejected rather
    /// than silently rounded).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n)
                if *n >= 0.0
                    && n.fract() == 0.0
                    && *n <= MAX_EXACT_INTEGER as f64
                    // On 32-bit targets usize is the tighter bound; without
                    // this, `as usize` would saturate instead of rejecting.
                    && *n <= usize::MAX as f64 =>
            {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// `self` as a u64, if it is a non-negative whole number.
    ///
    /// Values above 2^53 lose precision through the f64 number model; the
    /// writer side ([`u64_to_json`]) therefore encodes large integers as
    /// strings, which this accessor also accepts.  Raw JSON *numbers*
    /// above 2^53 are rejected (the digits written are not the value the
    /// reader would get back), matching the writer's contract.  One edge
    /// is undetectable after parsing: a text like `2^53 + 1` rounds onto
    /// 2^53 itself inside the parser and is accepted as that value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INTEGER as f64 =>
            {
                Some(*n as u64)
            }
            JsonValue::String(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// `self` as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `self` as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a.as_slice()),
            _ => None,
        }
    }

    /// `self` as an object association list, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(o) => Some(o.as_slice()),
            _ => None,
        }
    }

    /// Member lookup on objects (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Serialises the value as compact JSON (no whitespace).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialises the value as pretty JSON with two-space indentation —
    /// the archival format (stable, diffable, human-readable).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses JSON text into a value tree.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            // Empty containers and scalars render compactly.
            other => other.write_compact(out),
        }
    }
}

/// The largest integer every f64 (and therefore every JSON number here)
/// represents exactly: 2^53.
pub const MAX_EXACT_INTEGER: u64 = 1 << 53;

/// Encodes a `u64` losslessly: within f64's exact-integer range it becomes
/// a JSON number, above it a decimal string (both accepted by
/// [`JsonValue::as_u64`]).
pub fn u64_to_json(value: u64) -> JsonValue {
    if value <= MAX_EXACT_INTEGER {
        JsonValue::Number(value as f64)
    } else {
        JsonValue::String(value.to_string())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // `JsonValue::number` never constructs these, but a hand-built
        // `JsonValue::Number(f64::NAN)` must still emit valid JSON.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Whole numbers print without the trailing ".0" Rust would not add
        // anyway, but go through i64 to avoid "-0".
        let as_int = n as i64;
        out.push_str(&as_int.to_string());
    } else {
        // Rust's f64 Display is the shortest string that round-trips, and
        // is deterministic — exactly what byte-identical archives need.
        out.push_str(&n.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(
        &mut self,
        keyword: &str,
        value: JsonValue,
    ) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{keyword}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in number"))?;
        let parsed: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number '{text}'")))?;
        if !parsed.is_finite() {
            return Err(self.error(format!("number '{text}' overflows f64")));
        }
        Ok(JsonValue::Number(parsed))
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peek guaranteed a byte");
                    if (ch as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid UTF-8 in \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", JsonValue::Null),
            ("true", JsonValue::Bool(true)),
            ("false", JsonValue::Bool(false)),
            ("0", JsonValue::Number(0.0)),
            ("-17", JsonValue::Number(-17.0)),
            ("3.5", JsonValue::Number(3.5)),
            ("1e3", JsonValue::Number(1000.0)),
            ("\"hi\"", JsonValue::String("hi".into())),
        ] {
            assert_eq!(JsonValue::parse(text).unwrap(), value, "{text}");
            let rendered = value.to_json_string();
            assert_eq!(JsonValue::parse(&rendered).unwrap(), value, "{rendered}");
        }
    }

    #[test]
    fn number_formatting_is_canonical() {
        assert_eq!(JsonValue::Number(4.0).to_json_string(), "4");
        assert_eq!(JsonValue::Number(-0.0).to_json_string(), "0");
        assert_eq!(JsonValue::Number(0.25).to_json_string(), "0.25");
        // Shortest round-trip representation.
        assert_eq!(JsonValue::Number(0.1).to_json_string(), "0.1");
        let third = 1.0 / 3.0;
        let rendered = JsonValue::Number(third).to_json_string();
        assert_eq!(rendered.parse::<f64>().unwrap(), third);
        // Non-finite values degrade to null rather than invalid JSON.
        assert_eq!(JsonValue::number(f64::NAN), JsonValue::Null);
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json_string(), "null");
    }

    #[test]
    fn u64_encoding_is_lossless() {
        for v in [0u64, 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let encoded = u64_to_json(v);
            assert_eq!(encoded.as_u64(), Some(v), "{v}");
            let rendered = encoded.to_json_string();
            assert_eq!(
                JsonValue::parse(&rendered).unwrap().as_u64(),
                Some(v),
                "{rendered}"
            );
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "line1\nline2\t\"quoted\" \\ slash \u{1F600} \u{0007}";
        let value = JsonValue::String(tricky.into());
        let rendered = value.to_json_string();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), value);
        // Explicit \u escapes, including a surrogate pair.
        let parsed = JsonValue::parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, JsonValue::String("A\u{1F600}".into()));
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let value = obj(vec![
            ("zulu", JsonValue::Number(1.0)),
            (
                "alpha",
                JsonValue::Array(vec![
                    JsonValue::Null,
                    JsonValue::Bool(false),
                    JsonValue::String("x".into()),
                ]),
            ),
            ("empty_array", JsonValue::Array(vec![])),
            ("empty_object", JsonValue::Object(vec![])),
            ("nested", obj(vec![("k", JsonValue::Number(2.5))])),
        ]);
        let compact = value.to_json_string();
        assert_eq!(JsonValue::parse(&compact).unwrap(), value);
        // Insertion order survives (zulu before alpha).
        assert!(compact.find("zulu").unwrap() < compact.find("alpha").unwrap());
        let pretty = value.to_json_string_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), value);
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn accessors() {
        let value = obj(vec![
            ("n", JsonValue::Number(7.0)),
            ("s", JsonValue::String("text".into())),
            ("b", JsonValue::Bool(true)),
            ("a", JsonValue::Array(vec![JsonValue::Number(1.0)])),
        ]);
        assert_eq!(value.get("n").unwrap().as_usize(), Some(7));
        assert_eq!(value.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(value.get("s").unwrap().as_str(), Some("text"));
        assert_eq!(value.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(value.get("missing").is_none());
        assert!(value.as_object().is_some());
        assert!(JsonValue::Null.is_null());
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1.5).as_usize(), None);
        // Raw numbers beyond f64's exact-integer range are rejected, not
        // silently rounded — only the string encoding carries them.
        let max_exact = MAX_EXACT_INTEGER as f64;
        assert_eq!(JsonValue::Number(max_exact).as_u64(), Some(1 << 53));
        assert_eq!(JsonValue::Number(max_exact * 2.0).as_u64(), None);
        assert_eq!(JsonValue::Number(max_exact * 2.0).as_usize(), None);
        // 2^64 used to saturate to u64::MAX through `as u64`; now rejected.
        assert_eq!(
            JsonValue::parse("18446744073709551616").unwrap().as_u64(),
            None
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"k\" 1}",
            "{\"k\":}",
            "\"unterminated",
            "tru",
            "12abc",
            "[1] trailing",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "1e999",
        ] {
            assert!(JsonValue::parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let err = JsonValue::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
