//! Spectrum estimation: periodograms, Welch PSD, band power and summary
//! spectral statistics.
//!
//! These estimators drive the experiments' measurements: band power in the
//! ultrasonic region versus the voice band (attack inaudibility), power
//! below 50 Hz (defense shadow feature), and spectral tilt (defense).

use crate::error::{DspError, Result};
use crate::fft::{fft_real_n, next_power_of_two};
use crate::window::WindowKind;

/// A power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    /// Frequency of each bin in Hz.
    pub frequencies_hz: Vec<f64>,
    /// Power density of each bin (linear units, per Hz).
    pub power: Vec<f64>,
    /// Bin spacing in Hz.
    pub resolution_hz: f64,
}

impl PowerSpectrum {
    /// Total power integrated over all bins.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum::<f64>() * self.resolution_hz
    }

    /// Power integrated between `low_hz` and `high_hz` (inclusive).
    pub fn band_power(&self, low_hz: f64, high_hz: f64) -> f64 {
        self.frequencies_hz
            .iter()
            .zip(self.power.iter())
            .filter(|(f, _)| **f >= low_hz && **f <= high_hz)
            .map(|(_, p)| p)
            .sum::<f64>()
            * self.resolution_hz
    }

    /// Frequency of the strongest bin.
    pub fn peak_frequency_hz(&self) -> f64 {
        self.frequencies_hz
            .iter()
            .zip(self.power.iter())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(f, _)| *f)
            .unwrap_or(0.0)
    }

    /// Spectral centroid (power-weighted mean frequency) in Hz.
    pub fn centroid_hz(&self) -> f64 {
        let total: f64 = self.power.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.frequencies_hz
            .iter()
            .zip(self.power.iter())
            .map(|(f, p)| f * p)
            .sum::<f64>()
            / total
    }

    /// Spectral tilt: slope of a least-squares fit of power in dB against
    /// frequency in kHz, over bins whose power is above the floor.  Negative
    /// values mean power falls with frequency (typical for voiced speech).
    pub fn tilt_db_per_khz(&self) -> f64 {
        let points: Vec<(f64, f64)> = self
            .frequencies_hz
            .iter()
            .zip(self.power.iter())
            .filter(|(_, p)| **p > 0.0)
            .map(|(f, p)| (f / 1_000.0, 10.0 * p.log10()))
            .collect();
        linear_slope(&points)
    }
}

/// Least-squares slope of `y` against `x`.
fn linear_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let sum_x: f64 = points.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
    let sum_xx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sum_xy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sum_xy - sum_x * sum_y) / denom
    }
}

/// Single-segment periodogram of `samples`.
pub fn periodogram(samples: &[f64], sample_rate_hz: f64) -> Result<PowerSpectrum> {
    welch_psd(
        samples,
        sample_rate_hz,
        samples.len().max(16),
        0.0,
        WindowKind::Hann,
    )
}

/// Welch PSD estimate with segments of `segment_len` samples and fractional
/// `overlap` in `[0, 1)`.
pub fn welch_psd(
    samples: &[f64],
    sample_rate_hz: f64,
    segment_len: usize,
    overlap: f64,
    window: WindowKind,
) -> Result<PowerSpectrum> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "welch_psd",
        });
    }
    if !(sample_rate_hz > 0.0) {
        return Err(DspError::InvalidSampleRate { sample_rate_hz });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DspError::invalid_parameter("overlap", "must be in [0, 1)"));
    }
    let segment_len = segment_len.min(samples.len()).max(16);
    let nfft = next_power_of_two(segment_len);
    let hop = ((segment_len as f64) * (1.0 - overlap)).max(1.0) as usize;
    let win = window.symmetric(segment_len);
    let win_power: f64 = win.iter().map(|w| w * w).sum();

    let n_bins = nfft / 2 + 1;
    let mut accumulated = vec![0.0; n_bins];
    let mut n_segments = 0usize;
    let mut start = 0usize;
    while start + segment_len <= samples.len() {
        let mut frame: Vec<f64> = samples[start..start + segment_len]
            .iter()
            .zip(win.iter())
            .map(|(s, w)| s * w)
            .collect();
        frame.resize(nfft, 0.0);
        let spec = fft_real_n(&frame, nfft)?;
        for (k, acc) in accumulated.iter_mut().enumerate() {
            // One-sided PSD: double everything except DC and Nyquist.
            let scale = if k == 0 || k == nfft / 2 { 1.0 } else { 2.0 };
            *acc += scale * spec[k].norm_sqr() / (sample_rate_hz * win_power);
        }
        n_segments += 1;
        start += hop;
    }
    if n_segments == 0 {
        // Signal shorter than one segment: pad a single frame.
        let mut frame: Vec<f64> = samples.iter().zip(win.iter()).map(|(s, w)| s * w).collect();
        frame.resize(nfft, 0.0);
        let spec = fft_real_n(&frame, nfft)?;
        for (k, acc) in accumulated.iter_mut().enumerate() {
            let scale = if k == 0 || k == nfft / 2 { 1.0 } else { 2.0 };
            *acc += scale * spec[k].norm_sqr() / (sample_rate_hz * win_power);
        }
        n_segments = 1;
    }
    let resolution_hz = sample_rate_hz / nfft as f64;
    let frequencies_hz: Vec<f64> = (0..n_bins).map(|k| k as f64 * resolution_hz).collect();
    let power: Vec<f64> = accumulated
        .into_iter()
        .map(|p| p / n_segments as f64)
        .collect();
    Ok(PowerSpectrum {
        frequencies_hz,
        power,
        resolution_hz,
    })
}

/// Convenience: power of `samples` in the band `[low_hz, high_hz]`.
pub fn band_power(samples: &[f64], sample_rate_hz: f64, low_hz: f64, high_hz: f64) -> Result<f64> {
    if low_hz > high_hz {
        return Err(DspError::invalid_parameter(
            "band",
            format!("low {low_hz} must not exceed high {high_hz}"),
        ));
    }
    let seg = samples.len().clamp(64, 8_192);
    let psd = welch_psd(samples, sample_rate_hz, seg, 0.5, WindowKind::Hann)?;
    Ok(psd.band_power(low_hz, high_hz))
}

/// Ratio (in dB) of power inside `[low_hz, high_hz]` to total power.
pub fn band_power_ratio_db(
    samples: &[f64],
    sample_rate_hz: f64,
    low_hz: f64,
    high_hz: f64,
) -> Result<f64> {
    let seg = samples.len().clamp(64, 8_192);
    let psd = welch_psd(samples, sample_rate_hz, seg, 0.5, WindowKind::Hann)?;
    let band = psd.band_power(low_hz, high_hz);
    let total = psd.total_power();
    Ok(crate::db::power_to_db(band.max(1e-24) / total.max(1e-24)))
}

/// Total harmonic distortion of a tone at `fundamental_hz`, considering
/// harmonics up to Nyquist.  Returns the ratio of harmonic power to
/// fundamental power (linear, not dB).
pub fn total_harmonic_distortion(
    samples: &[f64],
    sample_rate_hz: f64,
    fundamental_hz: f64,
) -> Result<f64> {
    if fundamental_hz <= 0.0 || fundamental_hz >= sample_rate_hz / 2.0 {
        return Err(DspError::InvalidFrequency {
            frequency_hz: fundamental_hz,
            nyquist_hz: sample_rate_hz / 2.0,
        });
    }
    let seg = samples.len().clamp(256, 16_384);
    let psd = welch_psd(samples, sample_rate_hz, seg, 0.5, WindowKind::Hann)?;
    let half_width = fundamental_hz * 0.1;
    let fundamental = psd.band_power(fundamental_hz - half_width, fundamental_hz + half_width);
    let mut harmonic = 0.0;
    let mut k = 2.0;
    while k * fundamental_hz < sample_rate_hz / 2.0 {
        harmonic += psd.band_power(
            k * fundamental_hz - half_width,
            k * fundamental_hz + half_width,
        );
        k += 1.0;
    }
    Ok(harmonic / fundamental.max(1e-24))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    fn tone(freq: f64, amp: f64, fs: f64, dur: f64) -> Vec<f64> {
        Signal::tone(freq, amp, dur, fs).unwrap().into_samples()
    }

    #[test]
    fn validation() {
        assert!(welch_psd(&[], 48_000.0, 256, 0.5, WindowKind::Hann).is_err());
        assert!(welch_psd(&[1.0; 64], 0.0, 32, 0.5, WindowKind::Hann).is_err());
        assert!(welch_psd(&[1.0; 64], 48_000.0, 32, 1.0, WindowKind::Hann).is_err());
        assert!(band_power(&[1.0; 64], 48_000.0, 2_000.0, 1_000.0).is_err());
        assert!(total_harmonic_distortion(&[1.0; 64], 48_000.0, 30_000.0).is_err());
    }

    #[test]
    fn psd_peak_is_at_tone_frequency() {
        let fs = 48_000.0;
        let x = tone(5_000.0, 1.0, fs, 0.5);
        let psd = welch_psd(&x, fs, 2_048, 0.5, WindowKind::Hann).unwrap();
        let peak = psd.peak_frequency_hz();
        assert!((peak - 5_000.0).abs() < 50.0, "peak at {peak}");
    }

    #[test]
    fn total_power_matches_parseval_for_tone() {
        let fs = 48_000.0;
        let amp = 0.5;
        let x = tone(3_000.0, amp, fs, 1.0);
        let psd = welch_psd(&x, fs, 4_096, 0.5, WindowKind::Hann).unwrap();
        // Mean-square of a sine of amplitude a is a^2/2.
        let expected = amp * amp / 2.0;
        let total = psd.total_power();
        assert!(
            (total - expected).abs() / expected < 0.05,
            "total {total} vs {expected}"
        );
    }

    #[test]
    fn band_power_isolates_components() {
        let fs = 48_000.0;
        let mut sig = Signal::tone(1_000.0, 1.0, 0.5, fs).unwrap();
        sig.mix(&Signal::tone(10_000.0, 0.1, 0.5, fs).unwrap())
            .unwrap();
        let x = sig.samples();
        let low = band_power(x, fs, 500.0, 1_500.0).unwrap();
        let high = band_power(x, fs, 9_000.0, 11_000.0).unwrap();
        // Amplitude ratio 10 => power ratio 100.
        let ratio = low / high;
        assert!(ratio > 50.0 && ratio < 200.0, "ratio {ratio}");
    }

    #[test]
    fn band_power_ratio_db_for_pure_tone_is_near_zero() {
        let fs = 48_000.0;
        let x = tone(2_000.0, 1.0, fs, 0.5);
        let r = band_power_ratio_db(&x, fs, 1_500.0, 2_500.0).unwrap();
        assert!(r > -1.0 && r <= 0.01, "ratio {r} dB");
        let empty_band = band_power_ratio_db(&x, fs, 10_000.0, 12_000.0).unwrap();
        assert!(empty_band < -40.0);
    }

    #[test]
    fn centroid_sits_between_two_equal_tones() {
        let fs = 48_000.0;
        let mut sig = Signal::tone(1_000.0, 1.0, 0.5, fs).unwrap();
        sig.mix(&Signal::tone(3_000.0, 1.0, 0.5, fs).unwrap())
            .unwrap();
        let psd = welch_psd(sig.samples(), fs, 4_096, 0.5, WindowKind::Hann).unwrap();
        let c = psd.centroid_hz();
        assert!(c > 1_500.0 && c < 2_500.0, "centroid {c}");
    }

    #[test]
    fn tilt_is_negative_for_low_frequency_weighted_signal() {
        let fs = 8_000.0;
        let mut sig = Signal::tone(200.0, 1.0, 1.0, fs).unwrap();
        sig.mix(&Signal::tone(2_000.0, 0.05, 1.0, fs).unwrap())
            .unwrap();
        let psd = welch_psd(sig.samples(), fs, 1_024, 0.5, WindowKind::Hann).unwrap();
        assert!(psd.tilt_db_per_khz() < 0.0);
    }

    #[test]
    fn thd_detects_distortion() {
        let fs = 48_000.0;
        let clean = tone(1_000.0, 0.5, fs, 0.5);
        // Clip hard to introduce odd harmonics.
        let distorted: Vec<f64> = clean.iter().map(|x| x.clamp(-0.25, 0.25)).collect();
        let thd_clean = total_harmonic_distortion(&clean, fs, 1_000.0).unwrap();
        let thd_dirty = total_harmonic_distortion(&distorted, fs, 1_000.0).unwrap();
        assert!(thd_clean < 1e-4, "clean THD {thd_clean}");
        assert!(thd_dirty > 0.01, "distorted THD {thd_dirty}");
    }

    #[test]
    fn short_signals_still_produce_a_spectrum() {
        let x = tone(1_000.0, 1.0, 8_000.0, 0.004); // 32 samples
        let psd = welch_psd(&x, 8_000.0, 256, 0.5, WindowKind::Hann).unwrap();
        assert!(!psd.power.is_empty());
        assert!(psd.total_power() > 0.0);
    }
}
