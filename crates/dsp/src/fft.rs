//! Radix-2 fast Fourier transform.
//!
//! The transform sizes used throughout the workspace are powers of two
//! (analysis frames, fast convolution, analytic-signal computation), so a
//! classic iterative radix-2 Cooley–Tukey implementation is sufficient.
//! Helpers are provided for real-input transforms, inverse transforms, and
//! next-power-of-two zero-padding.

use crate::complex::Complex;
use crate::error::{DspError, Result};

/// Returns the smallest power of two that is `>= n` (and at least 1).
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns `true` if `n` is a non-zero power of two.
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place iterative radix-2 FFT.
///
/// `buffer.len()` must be a power of two.  `inverse` selects the inverse
/// transform; the inverse is scaled by `1/N` so that
/// `ifft(fft(x)) == x`.
pub fn fft_in_place(buffer: &mut [Complex], inverse: bool) -> Result<()> {
    let n = buffer.len();
    if n == 0 {
        return Err(DspError::EmptyInput { operation: "fft" });
    }
    if !is_power_of_two(n) {
        return Err(DspError::invalid_parameter(
            "fft length",
            format!("{n} is not a power of two"),
        ));
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buffer.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex::cis(angle);
        let mut start = 0usize;
        while start < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let even = buffer[start + k];
                let odd = buffer[start + k + len / 2] * w;
                buffer[start + k] = even + odd;
                buffer[start + k + len / 2] = even - odd;
                w *= w_len;
            }
            start += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for value in buffer.iter_mut() {
            *value = value.scale(scale);
        }
    }
    Ok(())
}

/// Forward FFT of a complex buffer, returning a new vector.
pub fn fft(input: &[Complex]) -> Result<Vec<Complex>> {
    let mut buffer = input.to_vec();
    fft_in_place(&mut buffer, false)?;
    Ok(buffer)
}

/// Inverse FFT of a complex buffer, returning a new vector.
pub fn ifft(input: &[Complex]) -> Result<Vec<Complex>> {
    let mut buffer = input.to_vec();
    fft_in_place(&mut buffer, true)?;
    Ok(buffer)
}

/// Forward FFT of a real signal.
///
/// The input is zero-padded to the next power of two; the full complex
/// spectrum of that padded length is returned (not just the positive
/// frequencies), which keeps downstream code simple.
pub fn fft_real(input: &[f64]) -> Result<Vec<Complex>> {
    if input.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "fft_real",
        });
    }
    let n = next_power_of_two(input.len());
    let mut buffer = vec![Complex::ZERO; n];
    for (slot, &x) in buffer.iter_mut().zip(input.iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut buffer, false)?;
    Ok(buffer)
}

/// Forward FFT of a real signal padded/truncated to exactly `n` points
/// (`n` must be a power of two).
pub fn fft_real_n(input: &[f64], n: usize) -> Result<Vec<Complex>> {
    if input.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "fft_real_n",
        });
    }
    if !is_power_of_two(n) {
        return Err(DspError::invalid_parameter(
            "n",
            format!("{n} is not a power of two"),
        ));
    }
    let mut buffer = vec![Complex::ZERO; n];
    for (slot, &x) in buffer.iter_mut().zip(input.iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut buffer, false)?;
    Ok(buffer)
}

/// Inverse FFT returning only the real parts (the caller asserts the
/// spectrum is conjugate-symmetric, e.g. because it came from a real
/// signal).
pub fn ifft_real(spectrum: &[Complex]) -> Result<Vec<f64>> {
    let out = ifft(spectrum)?;
    Ok(out.into_iter().map(|c| c.re).collect())
}

/// Frequency in Hz corresponding to FFT bin `bin` for a transform of length
/// `n` at `sample_rate_hz`.  Bins above `n/2` map to negative frequencies.
#[inline]
pub fn bin_frequency(bin: usize, n: usize, sample_rate_hz: f64) -> f64 {
    let k = bin % n;
    if k <= n / 2 {
        k as f64 * sample_rate_hz / n as f64
    } else {
        (k as f64 - n as f64) * sample_rate_hz / n as f64
    }
}

/// FFT bin index closest to `frequency_hz` for a transform of length `n` at
/// `sample_rate_hz`.
#[inline]
pub fn frequency_bin(frequency_hz: f64, n: usize, sample_rate_hz: f64) -> usize {
    let bin = (frequency_hz / sample_rate_hz * n as f64).round() as isize;
    bin.rem_euclid(n as isize) as usize
}

/// Linear (fast, FFT-based) convolution of two real sequences.
///
/// The output length is `a.len() + b.len() - 1`, matching direct
/// convolution.
pub fn fft_convolve(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "fft_convolve",
        });
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_power_of_two(out_len);
    let mut fa = vec![Complex::ZERO; n];
    let mut fb = vec![Complex::ZERO; n];
    for (slot, &x) in fa.iter_mut().zip(a.iter()) {
        *slot = Complex::from_real(x);
    }
    for (slot, &x) in fb.iter_mut().zip(b.iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut fa, false)?;
    fft_in_place(&mut fb, false)?;
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x *= *y;
    }
    fft_in_place(&mut fa, true)?;
    Ok(fa.into_iter().take(out_len).map(|c| c.re).collect())
}

/// A precomputed kernel spectrum for overlap-save convolution.
///
/// Transforming the kernel is the fixed cost of FFT convolution; when the
/// same kernel is applied to many signals (anti-alias filters, band
/// shaping, room taps) it pays to do it once.  Overlap-save also keeps the
/// transform size proportional to the *kernel* rather than the signal, so
/// convolving a one-second 192 kHz capture with a 255-tap filter runs many
/// small FFTs instead of one 2^18-point pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpectrum {
    block: usize,
    kernel_len: usize,
    spectrum: Vec<Complex>,
}

impl KernelSpectrum {
    /// Transform `kernel` once, picking a block size a few times larger
    /// than the kernel so the overlap overhead stays small.
    pub fn new(kernel: &[f64]) -> Result<Self> {
        if kernel.is_empty() {
            return Err(DspError::EmptyInput {
                operation: "kernel spectrum",
            });
        }
        let block = (4 * next_power_of_two(kernel.len())).max(256);
        let mut spectrum = vec![Complex::ZERO; block];
        for (slot, &x) in spectrum.iter_mut().zip(kernel.iter()) {
            *slot = Complex::from_real(x);
        }
        fft_in_place(&mut spectrum, false)?;
        Ok(KernelSpectrum {
            block,
            kernel_len: kernel.len(),
            spectrum,
        })
    }

    /// Number of taps in the kernel this spectrum was built from.
    pub fn kernel_len(&self) -> usize {
        self.kernel_len
    }

    /// FFT block size used per overlap-save segment.
    pub fn block_len(&self) -> usize {
        self.block
    }

    /// Full linear convolution, output length `input.len() + kernel_len - 1`.
    pub fn convolve(&self, input: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.convolve_into(input, &mut out)?;
        Ok(out)
    }

    /// Full linear convolution written into `out` (cleared and resized),
    /// so callers in hot loops can reuse the output allocation.
    pub fn convolve_into(&self, input: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if input.is_empty() {
            return Err(DspError::EmptyInput {
                operation: "overlap-save convolve",
            });
        }
        let k = self.kernel_len;
        let b = self.block;
        // Each segment produces `l` valid output samples; the first `k - 1`
        // slots of every inverse transform are circular wrap and discarded.
        let l = b - k + 1;
        let out_len = input.len() + k - 1;
        out.clear();
        out.resize(out_len, 0.0);
        let mut segment = vec![Complex::ZERO; b];
        let mut start = 0usize;
        while start < out_len {
            // Output samples [start, start + l) depend on input samples
            // [start - k + 1, start + l); out-of-range taps are zero.
            for (j, slot) in segment.iter_mut().enumerate() {
                let idx = start as isize - (k as isize - 1) + j as isize;
                *slot = if idx >= 0 && (idx as usize) < input.len() {
                    Complex::from_real(input[idx as usize])
                } else {
                    Complex::ZERO
                };
            }
            fft_in_place(&mut segment, false)?;
            for (x, h) in segment.iter_mut().zip(self.spectrum.iter()) {
                *x *= *h;
            }
            fft_in_place(&mut segment, true)?;
            let valid = l.min(out_len - start);
            for (slot, value) in out[start..start + valid]
                .iter_mut()
                .zip(segment[k - 1..k - 1 + valid].iter())
            {
                *slot = value.re;
            }
            start += l;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn rejects_empty_and_non_power_of_two() {
        assert!(fft(&[]).is_err());
        let mut buf = vec![Complex::ZERO; 3];
        assert!(fft_in_place(&mut buf, false).is_err());
        assert!(fft_real_n(&[1.0], 3).is_err());
    }

    #[test]
    fn transform_of_impulse_is_flat() {
        let mut input = vec![Complex::ZERO; 8];
        input[0] = Complex::ONE;
        let out = fft(&input).unwrap();
        for bin in out {
            assert!(approx(bin.re, 1.0, 1e-12));
            assert!(approx(bin.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn transform_of_constant_concentrates_at_dc() {
        let input = vec![Complex::ONE; 16];
        let out = fft(&input).unwrap();
        assert!(approx(out[0].re, 16.0, 1e-9));
        for bin in &out[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }

    #[test]
    fn sine_peaks_at_expected_bin() {
        let n = 256;
        let fs = 8_000.0;
        let f = 1_000.0; // exactly bin 32
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let spec = fft_real(&samples).unwrap();
        let k = frequency_bin(f, n, fs);
        assert_eq!(k, 32);
        let peak_mag = spec[k].abs();
        assert!(approx(peak_mag, n as f64 / 2.0, 1e-6));
        // All other positive-frequency bins are tiny.
        for (i, bin) in spec.iter().enumerate().take(n / 2) {
            if i != k {
                assert!(bin.abs() < 1e-6, "bin {i} leaked {}", bin.abs());
            }
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 128;
        let samples: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let back = ifft(&fft(&samples).unwrap()).unwrap();
        for (a, b) in samples.iter().zip(back.iter()) {
            assert!(approx(a.re, b.re, 1e-9));
            assert!(approx(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let samples: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64 - 3.0) / 3.0).collect();
        let spec = fft_real_n(&samples, n).unwrap();
        let time_energy: f64 = samples.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!(approx(time_energy, freq_energy, 1e-9));
    }

    #[test]
    fn bin_frequency_maps_both_halves() {
        assert!(approx(bin_frequency(0, 8, 8000.0), 0.0, 1e-12));
        assert!(approx(bin_frequency(1, 8, 8000.0), 1000.0, 1e-12));
        assert!(approx(bin_frequency(4, 8, 8000.0), 4000.0, 1e-12));
        assert!(approx(bin_frequency(7, 8, 8000.0), -1000.0, 1e-12));
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -1.0, 0.25];
        let fast = fft_convolve(&a, &b).unwrap();
        let mut direct = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                direct[i + j] += x * y;
            }
        }
        assert_eq!(fast.len(), direct.len());
        for (f, d) in fast.iter().zip(direct.iter()) {
            assert!(approx(*f, *d, 1e-9));
        }
    }

    fn direct_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut direct = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                direct[i + j] += x * y;
            }
        }
        direct
    }

    #[test]
    fn overlap_save_matches_direct_across_odd_lengths() {
        for (signal_len, kernel_len) in [(1, 1), (37, 5), (255, 17), (1023, 63), (500, 101)] {
            let signal: Vec<f64> = (0..signal_len)
                .map(|i| ((i * 31 % 13) as f64 - 6.0) / 6.0)
                .collect();
            let kernel: Vec<f64> = (0..kernel_len)
                .map(|i| ((i * 7 % 5) as f64 - 2.0) / 4.0)
                .collect();
            let spec = KernelSpectrum::new(&kernel).unwrap();
            let fast = spec.convolve(&signal).unwrap();
            let direct = direct_convolve(&signal, &kernel);
            assert_eq!(fast.len(), direct.len());
            for (f, d) in fast.iter().zip(direct.iter()) {
                assert!(
                    approx(*f, *d, 1e-9),
                    "mismatch at ({signal_len}, {kernel_len}): {f} vs {d}"
                );
            }
        }
    }

    #[test]
    fn overlap_save_on_silence_is_silent() {
        let kernel = [0.25, 0.5, 0.25];
        let spec = KernelSpectrum::new(&kernel).unwrap();
        let out = spec.convolve(&vec![0.0; 777]).unwrap();
        assert_eq!(out.len(), 779);
        assert!(out.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn overlap_save_kernel_longer_than_signal() {
        let signal = [1.0, -2.0, 0.5];
        let kernel: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() / 8.0).collect();
        let spec = KernelSpectrum::new(&kernel).unwrap();
        let fast = spec.convolve(&signal).unwrap();
        let direct = direct_convolve(&signal, &kernel);
        assert_eq!(fast.len(), direct.len());
        for (f, d) in fast.iter().zip(direct.iter()) {
            assert!(approx(*f, *d, 1e-9));
        }
    }

    #[test]
    fn overlap_save_matches_full_size_fft_convolve() {
        let signal: Vec<f64> = (0..4096)
            .map(|i| ((i * 131 % 97) as f64 - 48.0) / 48.0)
            .collect();
        let kernel: Vec<f64> = (0..255)
            .map(|i| ((i * 11 % 23) as f64 - 11.0) / 64.0)
            .collect();
        let spec = KernelSpectrum::new(&kernel).unwrap();
        let blocked = spec.convolve(&signal).unwrap();
        let full = fft_convolve(&signal, &kernel).unwrap();
        assert_eq!(blocked.len(), full.len());
        for (b, f) in blocked.iter().zip(full.iter()) {
            assert!(approx(*b, *f, 1e-9));
        }
    }

    #[test]
    fn convolve_into_reuses_the_output_allocation() {
        let kernel = [1.0, 1.0];
        let spec = KernelSpectrum::new(&kernel).unwrap();
        let mut out = vec![9.0; 4];
        spec.convolve_into(&[1.0, 2.0, 3.0], &mut out).unwrap();
        assert_eq!(out.len(), 4);
        for (got, want) in out.iter().zip([1.0, 3.0, 5.0, 3.0].iter()) {
            assert!(approx(*got, *want, 1e-9));
        }
        assert!(spec.convolve(&[]).is_err());
        assert!(KernelSpectrum::new(&[]).is_err());
    }

    #[test]
    fn next_power_of_two_helper() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(1024), 1024);
        assert!(is_power_of_two(64));
        assert!(!is_power_of_two(65));
        assert!(!is_power_of_two(0));
    }
}
