//! Minimal complex-number type used by the FFT and analytic-signal code.
//!
//! The workspace deliberately avoids external numeric crates, so this module
//! provides the small subset of complex arithmetic that the DSP layer needs:
//! construction from polar/cartesian form, the field operations, conjugation,
//! magnitude and argument.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * exp(i * theta)`.
    #[inline]
    pub fn from_polar(radius: f64, angle_rad: f64) -> Self {
        Complex {
            re: radius * angle_rad.cos(),
            im: radius * angle_rad.sin(),
        }
    }

    /// `exp(i * theta)`, a unit phasor.
    #[inline]
    pub fn cis(angle_rad: f64) -> Self {
        Self::from_polar(1.0, angle_rad)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper than [`Complex::abs`] when only relative
    /// ordering or power is needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        Complex {
            re: self.re * factor,
            im: self.im * factor,
        }
    }

    /// Complex exponential `exp(self)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::from_real(1.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        let c: Complex = 2.5.into();
        assert_eq!(c, Complex::new(2.5, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let c = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(close(c.abs(), 2.0));
        assert!(close(c.arg(), std::f64::consts::FRAC_PI_3));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i^2 = -4 - 5.5i
        let p = a * b;
        assert!(close(p.re, -4.0) && close(p.im, -5.5));
        let q = p / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        assert!(close(a.abs(), 5.0));
        assert!(close(a.norm_sqr(), 25.0));
        assert!(close((a * a.conj()).re, 25.0));
    }

    #[test]
    fn multiplication_by_i_rotates_quarter_turn() {
        let a = Complex::new(1.0, 0.0);
        let r = a * Complex::I;
        assert!(close(r.re, 0.0) && close(r.im, 1.0));
    }

    #[test]
    fn exponential_matches_euler() {
        let theta = 0.7_f64;
        let e = Complex::new(0.0, theta).exp();
        assert!(close(e.re, theta.cos()));
        assert!(close(e.im, theta.sin()));
        assert_eq!(Complex::cis(theta), Complex::from_polar(1.0, theta));
    }

    #[test]
    fn assign_operators() {
        let mut a = Complex::new(1.0, 1.0);
        a += Complex::new(1.0, -2.0);
        assert_eq!(a, Complex::new(2.0, -1.0));
        a -= Complex::new(0.5, 0.5);
        assert_eq!(a, Complex::new(1.5, -1.5));
        a *= Complex::new(2.0, 0.0);
        assert_eq!(a, Complex::new(3.0, -3.0));
    }

    #[test]
    fn finiteness() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
