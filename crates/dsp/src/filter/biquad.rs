//! Second-order IIR sections (biquads) and Butterworth cascades.
//!
//! Biquads are used where a cheap recursive filter is preferable to a long
//! FIR: the microphone model's anti-alias filter, the defense's sub-band
//! isolators, and the envelope detector's smoothing stage.

use crate::error::{DspError, Result};
use crate::signal::Signal;

/// One direct-form-I second-order section.
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    // Feed-forward coefficients.
    b0: f64,
    b1: f64,
    b2: f64,
    // Feedback coefficients (a0 normalised to 1).
    a1: f64,
    a2: f64,
}

impl Biquad {
    /// Creates a section from raw coefficients (`a0` is used to normalise).
    pub fn new(b0: f64, b1: f64, b2: f64, a0: f64, a1: f64, a2: f64) -> Result<Self> {
        if a0 == 0.0 || !a0.is_finite() {
            return Err(DspError::invalid_parameter(
                "a0",
                "must be finite and non-zero",
            ));
        }
        Ok(Biquad {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: a1 / a0,
            a2: a2 / a0,
        })
    }

    /// RBJ-cookbook low-pass section.
    pub fn low_pass(cutoff_hz: f64, q: f64, sample_rate_hz: f64) -> Result<Self> {
        let (w0, alpha) = omega_alpha(cutoff_hz, q, sample_rate_hz)?;
        let cos_w0 = w0.cos();
        Biquad::new(
            (1.0 - cos_w0) / 2.0,
            1.0 - cos_w0,
            (1.0 - cos_w0) / 2.0,
            1.0 + alpha,
            -2.0 * cos_w0,
            1.0 - alpha,
        )
    }

    /// RBJ-cookbook high-pass section.
    pub fn high_pass(cutoff_hz: f64, q: f64, sample_rate_hz: f64) -> Result<Self> {
        let (w0, alpha) = omega_alpha(cutoff_hz, q, sample_rate_hz)?;
        let cos_w0 = w0.cos();
        Biquad::new(
            (1.0 + cos_w0) / 2.0,
            -(1.0 + cos_w0),
            (1.0 + cos_w0) / 2.0,
            1.0 + alpha,
            -2.0 * cos_w0,
            1.0 - alpha,
        )
    }

    /// RBJ-cookbook band-pass section (constant 0 dB peak gain).
    pub fn band_pass(center_hz: f64, q: f64, sample_rate_hz: f64) -> Result<Self> {
        let (w0, alpha) = omega_alpha(center_hz, q, sample_rate_hz)?;
        let cos_w0 = w0.cos();
        Biquad::new(alpha, 0.0, -alpha, 1.0 + alpha, -2.0 * cos_w0, 1.0 - alpha)
    }

    /// RBJ-cookbook notch section.
    pub fn notch(center_hz: f64, q: f64, sample_rate_hz: f64) -> Result<Self> {
        let (w0, alpha) = omega_alpha(center_hz, q, sample_rate_hz)?;
        let cos_w0 = w0.cos();
        Biquad::new(
            1.0,
            -2.0 * cos_w0,
            1.0,
            1.0 + alpha,
            -2.0 * cos_w0,
            1.0 - alpha,
        )
    }

    /// Filters a buffer, returning a new vector (initial state is zero).
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; input.len()];
        self.filter_to_slice(input, &mut out);
        out
    }

    /// Filters a buffer in place (initial state is zero).
    ///
    /// A direct-form-I section only looks back at the last two inputs,
    /// which are carried in local state, so overwriting the buffer as it
    /// is read is safe and allocation-free.
    pub fn filter_in_place(&self, buffer: &mut [f64]) {
        let mut x1 = 0.0;
        let mut x2 = 0.0;
        let mut y1 = 0.0;
        let mut y2 = 0.0;
        for slot in buffer.iter_mut() {
            let x = *slot;
            let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            *slot = y;
        }
    }

    /// Filters a buffer into a caller-owned slice of the same length
    /// (initial state is zero). `out.len()` must equal `input.len()`.
    pub fn filter_to_slice(&self, input: &[f64], out: &mut [f64]) {
        debug_assert_eq!(input.len(), out.len());
        let mut x1 = 0.0;
        let mut x2 = 0.0;
        let mut y1 = 0.0;
        let mut y2 = 0.0;
        for (slot, &x) in out.iter_mut().zip(input.iter()) {
            let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            *slot = y;
        }
    }

    /// Magnitude response at `frequency_hz`.
    pub fn magnitude_response(&self, frequency_hz: f64, sample_rate_hz: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * frequency_hz / sample_rate_hz;
        let (c1, s1) = (w.cos(), w.sin());
        let (c2, s2) = ((2.0 * w).cos(), (2.0 * w).sin());
        // H(e^jw) = (b0 + b1 e^-jw + b2 e^-2jw) / (1 + a1 e^-jw + a2 e^-2jw)
        let num_re = self.b0 + self.b1 * c1 + self.b2 * c2;
        let num_im = -(self.b1 * s1 + self.b2 * s2);
        let den_re = 1.0 + self.a1 * c1 + self.a2 * c2;
        let den_im = -(self.a1 * s1 + self.a2 * s2);
        (num_re.hypot(num_im)) / (den_re.hypot(den_im))
    }
}

fn omega_alpha(frequency_hz: f64, q: f64, sample_rate_hz: f64) -> Result<(f64, f64)> {
    if !(sample_rate_hz > 0.0) {
        return Err(DspError::InvalidSampleRate { sample_rate_hz });
    }
    let nyquist = sample_rate_hz / 2.0;
    if frequency_hz <= 0.0 || frequency_hz >= nyquist {
        return Err(DspError::InvalidFrequency {
            frequency_hz,
            nyquist_hz: nyquist,
        });
    }
    if q <= 0.0 {
        return Err(DspError::invalid_parameter("q", "must be positive"));
    }
    let w0 = 2.0 * std::f64::consts::PI * frequency_hz / sample_rate_hz;
    let alpha = w0.sin() / (2.0 * q);
    Ok((w0, alpha))
}

/// A cascade of biquad sections, e.g. a higher-order Butterworth filter.
#[derive(Debug, Clone, PartialEq)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

/// Conventional name for a second-order-sections filter: a
/// [`BiquadCascade`] under the alias most DSP literature uses.
pub type SosFilter = BiquadCascade;

impl BiquadCascade {
    /// Builds a cascade from explicit sections.
    pub fn new(sections: Vec<Biquad>) -> Result<Self> {
        if sections.is_empty() {
            return Err(DspError::EmptyInput {
                operation: "BiquadCascade::new",
            });
        }
        Ok(BiquadCascade { sections })
    }

    /// Butterworth low-pass of even order `order` (rounded up), built as
    /// `order / 2` cascaded sections with the standard Butterworth Q values.
    pub fn butterworth_low_pass(cutoff_hz: f64, order: usize, sample_rate_hz: f64) -> Result<Self> {
        let sections = butterworth_qs(order)?
            .into_iter()
            .map(|q| Biquad::low_pass(cutoff_hz, q, sample_rate_hz))
            .collect::<Result<Vec<_>>>()?;
        BiquadCascade::new(sections)
    }

    /// Butterworth high-pass of even order `order` (rounded up).
    pub fn butterworth_high_pass(
        cutoff_hz: f64,
        order: usize,
        sample_rate_hz: f64,
    ) -> Result<Self> {
        let sections = butterworth_qs(order)?
            .into_iter()
            .map(|q| Biquad::high_pass(cutoff_hz, q, sample_rate_hz))
            .collect::<Result<Vec<_>>>()?;
        BiquadCascade::new(sections)
    }

    /// Band-pass built as a Butterworth high-pass at `low_hz` followed by a
    /// Butterworth low-pass at `high_hz` (each of order `order`).
    pub fn butterworth_band_pass(
        low_hz: f64,
        high_hz: f64,
        order: usize,
        sample_rate_hz: f64,
    ) -> Result<Self> {
        if low_hz >= high_hz {
            return Err(DspError::invalid_parameter(
                "band edges",
                format!("low {low_hz} Hz must be below high {high_hz} Hz"),
            ));
        }
        let mut sections =
            BiquadCascade::butterworth_high_pass(low_hz, order, sample_rate_hz)?.sections;
        sections
            .extend(BiquadCascade::butterworth_low_pass(high_hz, order, sample_rate_hz)?.sections);
        BiquadCascade::new(sections)
    }

    /// Number of second-order sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Filters a buffer through all sections in sequence.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.filter_into(input, &mut out);
        out
    }

    /// Filters a buffer through all sections into a caller-owned vector
    /// (cleared and resized), allocating nothing beyond `out`'s capacity.
    pub fn filter_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(input);
        self.filter_in_place(out);
    }

    /// Filters a buffer through all sections in place.
    pub fn filter_in_place(&self, buffer: &mut [f64]) {
        for section in &self.sections {
            section.filter_in_place(buffer);
        }
    }

    /// Filters a [`Signal`], preserving its sample rate.
    pub fn filter_signal(&self, input: &Signal) -> Result<Signal> {
        Signal::new(self.filter(input.samples()), input.sample_rate_hz())
    }

    /// Zero-phase filtering (forward + time-reversed pass).
    pub fn filtfilt(&self, input: &[f64]) -> Vec<f64> {
        let forward = self.filter(input);
        let mut reversed: Vec<f64> = forward.into_iter().rev().collect();
        reversed = self.filter(&reversed);
        reversed.reverse();
        reversed
    }

    /// Combined magnitude response of the cascade.
    pub fn magnitude_response(&self, frequency_hz: f64, sample_rate_hz: f64) -> f64 {
        self.sections
            .iter()
            .map(|s| s.magnitude_response(frequency_hz, sample_rate_hz))
            .product()
    }
}

/// Q values of the second-order sections of an order-`order` Butterworth
/// filter (order is rounded up to the next even number).
fn butterworth_qs(order: usize) -> Result<Vec<f64>> {
    if order == 0 {
        return Err(DspError::invalid_parameter("order", "must be at least 1"));
    }
    let order = if order % 2 == 0 { order } else { order + 1 };
    let n_sections = order / 2;
    let mut qs = Vec::with_capacity(n_sections);
    for k in 0..n_sections {
        let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * order as f64);
        qs.push(1.0 / (2.0 * theta.sin()));
    }
    Ok(qs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn parameter_validation() {
        assert!(Biquad::low_pass(0.0, 0.707, 48_000.0).is_err());
        assert!(Biquad::low_pass(30_000.0, 0.707, 48_000.0).is_err());
        assert!(Biquad::low_pass(1_000.0, -1.0, 48_000.0).is_err());
        assert!(Biquad::low_pass(1_000.0, 0.707, 0.0).is_err());
        assert!(Biquad::new(1.0, 0.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(BiquadCascade::new(vec![]).is_err());
        assert!(BiquadCascade::butterworth_low_pass(1_000.0, 0, 48_000.0).is_err());
        assert!(BiquadCascade::butterworth_band_pass(5_000.0, 1_000.0, 4, 48_000.0).is_err());
    }

    #[test]
    fn butterworth_order_rounds_up() {
        let c = BiquadCascade::butterworth_low_pass(1_000.0, 5, 48_000.0).unwrap();
        assert_eq!(c.num_sections(), 3);
        let c = BiquadCascade::butterworth_low_pass(1_000.0, 4, 48_000.0).unwrap();
        assert_eq!(c.num_sections(), 2);
    }

    #[test]
    fn low_pass_response_at_cutoff_is_minus_3db() {
        let c = BiquadCascade::butterworth_low_pass(1_000.0, 2, 48_000.0).unwrap();
        let mag = c.magnitude_response(1_000.0, 48_000.0);
        assert!(
            (mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "mag = {mag}"
        );
        assert!((c.magnitude_response(10.0, 48_000.0) - 1.0).abs() < 1e-3);
        assert!(c.magnitude_response(10_000.0, 48_000.0) < 0.02);
    }

    #[test]
    fn butterworth_low_pass_filters_tones() {
        let fs = 48_000.0;
        let c = BiquadCascade::butterworth_low_pass(2_000.0, 6, fs).unwrap();
        let low = tone(500.0, fs, 9_600);
        let high = tone(10_000.0, fs, 9_600);
        let steady = 2_000..9_000;
        assert!(rms(&c.filter(&low)[steady.clone()]) / rms(&low[steady.clone()]) > 0.95);
        assert!(rms(&c.filter(&high)[steady.clone()]) / rms(&high[steady]) < 1e-3);
    }

    #[test]
    fn butterworth_high_pass_filters_tones() {
        let fs = 48_000.0;
        let c = BiquadCascade::butterworth_high_pass(2_000.0, 6, fs).unwrap();
        let low = tone(200.0, fs, 9_600);
        let high = tone(8_000.0, fs, 9_600);
        let steady = 2_000..9_000;
        assert!(rms(&c.filter(&low)[steady.clone()]) / rms(&low[steady.clone()]) < 1e-3);
        assert!(rms(&c.filter(&high)[steady.clone()]) / rms(&high[steady]) > 0.95);
    }

    #[test]
    fn band_pass_selects_band() {
        let fs = 48_000.0;
        let c = BiquadCascade::butterworth_band_pass(1_000.0, 4_000.0, 4, fs).unwrap();
        let inside = tone(2_000.0, fs, 9_600);
        let below = tone(100.0, fs, 9_600);
        let above = tone(12_000.0, fs, 9_600);
        let steady = 2_000..9_000;
        assert!(rms(&c.filter(&inside)[steady.clone()]) / rms(&inside[steady.clone()]) > 0.9);
        assert!(rms(&c.filter(&below)[steady.clone()]) / rms(&below[steady.clone()]) < 0.01);
        assert!(rms(&c.filter(&above)[steady.clone()]) / rms(&above[steady]) < 0.01);
    }

    #[test]
    fn notch_removes_centre_frequency() {
        let fs = 8_000.0;
        let n = Biquad::notch(1_000.0, 5.0, fs).unwrap();
        assert!(n.magnitude_response(1_000.0, fs) < 1e-6);
        assert!(n.magnitude_response(100.0, fs) > 0.95);
        assert!(n.magnitude_response(3_000.0, fs) > 0.95);
    }

    #[test]
    fn single_section_band_pass_peaks_at_centre() {
        let fs = 8_000.0;
        let bp = Biquad::band_pass(1_000.0, 2.0, fs).unwrap();
        let at_centre = bp.magnitude_response(1_000.0, fs);
        assert!((at_centre - 1.0).abs() < 0.01);
        assert!(bp.magnitude_response(100.0, fs) < 0.2);
    }

    #[test]
    fn filtfilt_doubles_attenuation_without_phase() {
        let fs = 8_000.0;
        let c = BiquadCascade::butterworth_low_pass(1_000.0, 2, fs).unwrap();
        let x = tone(500.0, fs, 4_000);
        let y = c.filtfilt(&x);
        assert_eq!(y.len(), x.len());
        // A 500 Hz tone is in the passband; filtfilt keeps it near unity.
        let steady = 1_000..3_000;
        assert!(rms(&y[steady.clone()]) / rms(&x[steady]) > 0.9);
    }

    #[test]
    fn in_place_and_into_variants_match_the_allocating_path() {
        let fs = 8_000.0;
        let x = tone(700.0, fs, 512);
        let section = Biquad::low_pass(1_000.0, 0.707, fs).unwrap();
        let baseline = section.filter(&x);
        let mut in_place = x.clone();
        section.filter_in_place(&mut in_place);
        assert_eq!(baseline, in_place);

        let cascade: SosFilter = BiquadCascade::butterworth_low_pass(1_000.0, 4, fs).unwrap();
        let cascade_baseline = cascade.filter(&x);
        let mut reused = vec![42.0; 3];
        cascade.filter_into(&x, &mut reused);
        assert_eq!(cascade_baseline, reused);
        let mut cascade_in_place = x.clone();
        cascade.filter_in_place(&mut cascade_in_place);
        assert_eq!(cascade_baseline, cascade_in_place);
    }

    #[test]
    fn filter_signal_preserves_rate() {
        let s = Signal::tone(440.0, 1.0, 0.25, 8_000.0).unwrap();
        let c = BiquadCascade::butterworth_low_pass(1_000.0, 4, 8_000.0).unwrap();
        let out = c.filter_signal(&s).unwrap();
        assert_eq!(out.sample_rate_hz(), 8_000.0);
        assert_eq!(out.len(), s.len());
    }
}
