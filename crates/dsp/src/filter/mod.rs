//! Digital filters: FIR design by windowed sinc, and Butterworth IIR
//! biquad cascades.
//!
//! Both families are used throughout the workspace:
//!
//! * FIR low-pass filters prepare the voice baseband (the attack keeps only
//!   0–8 kHz before modulation) and model the microphone's anti-alias filter.
//! * Butterworth band-pass cascades isolate sub-bands when extracting the
//!   defense's non-linearity-trace features.

pub mod biquad;
pub mod fir;

pub use biquad::{Biquad, BiquadCascade, SosFilter};
pub use fir::FirFilter;
