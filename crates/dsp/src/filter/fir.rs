//! FIR filter design by the windowed-sinc method, plus application helpers.
//!
//! The designs here are the standard textbook constructions: an ideal
//! brick-wall response is truncated to `taps` coefficients and shaped with a
//! window (Hamming by default).  [`FirFilter::filtfilt`] applies the filter
//! forward and backward for zero phase distortion, which matters when the
//! filtered signal is later compared sample-aligned against a reference
//! (e.g. the defense's shadow-correlation feature).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::{DspError, Result};
use crate::fft::KernelSpectrum;
use crate::signal::Signal;
use crate::window::WindowKind;

/// A finite-impulse-response filter described by its coefficients.
///
/// The kernel spectrum used by the FFT application path is computed
/// lazily on first use and kept for the filter's lifetime, so applying
/// the same filter to many signals transforms the kernel only once.
#[derive(Debug, Clone)]
pub struct FirFilter {
    coefficients: Vec<f64>,
    spectrum: OnceLock<Arc<KernelSpectrum>>,
}

impl PartialEq for FirFilter {
    fn eq(&self, other: &Self) -> bool {
        // The cached spectrum is derived state; identity is the taps.
        self.coefficients == other.coefficients
    }
}

impl FirFilter {
    fn from_raw(coefficients: Vec<f64>) -> Self {
        FirFilter {
            coefficients,
            spectrum: OnceLock::new(),
        }
    }

    /// Wraps raw coefficients as a filter.
    pub fn from_coefficients(coefficients: Vec<f64>) -> Result<Self> {
        if coefficients.is_empty() {
            return Err(DspError::EmptyInput {
                operation: "FirFilter::from_coefficients",
            });
        }
        Ok(FirFilter::from_raw(coefficients))
    }

    /// Designs a low-pass filter with the given cutoff.
    ///
    /// `taps` is forced odd so the filter has a symmetric (linear-phase)
    /// impulse response with an integer group delay of `(taps - 1) / 2`.
    pub fn low_pass(
        cutoff_hz: f64,
        sample_rate_hz: f64,
        taps: usize,
        window: WindowKind,
    ) -> Result<Self> {
        validate(cutoff_hz, sample_rate_hz, taps)?;
        let taps = make_odd(taps);
        let fc = cutoff_hz / sample_rate_hz; // normalised (cycles per sample)
        let mid = (taps / 2) as isize;
        let win = window.symmetric(taps);
        let coefficients: Vec<f64> = (0..taps)
            .map(|i| {
                let n = i as isize - mid;
                sinc(2.0 * fc * n as f64) * 2.0 * fc * win[i]
            })
            .collect();
        let mut filter = FirFilter::from_raw(coefficients);
        filter.normalize_dc_gain();
        Ok(filter)
    }

    /// Designs a high-pass filter by spectral inversion of a low-pass.
    pub fn high_pass(
        cutoff_hz: f64,
        sample_rate_hz: f64,
        taps: usize,
        window: WindowKind,
    ) -> Result<Self> {
        validate(cutoff_hz, sample_rate_hz, taps)?;
        let taps = make_odd(taps);
        let low = FirFilter::low_pass(cutoff_hz, sample_rate_hz, taps, window)?;
        let mid = taps / 2;
        let coefficients: Vec<f64> = low
            .coefficients
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == mid { 1.0 - c } else { -c })
            .collect();
        Ok(FirFilter::from_raw(coefficients))
    }

    /// Designs a band-pass filter between `low_hz` and `high_hz`.
    pub fn band_pass(
        low_hz: f64,
        high_hz: f64,
        sample_rate_hz: f64,
        taps: usize,
        window: WindowKind,
    ) -> Result<Self> {
        if low_hz >= high_hz {
            return Err(DspError::invalid_parameter(
                "band edges",
                format!("low {low_hz} Hz must be below high {high_hz} Hz"),
            ));
        }
        validate(low_hz, sample_rate_hz, taps)?;
        validate(high_hz, sample_rate_hz, taps)?;
        let taps = make_odd(taps);
        let f1 = low_hz / sample_rate_hz;
        let f2 = high_hz / sample_rate_hz;
        let mid = (taps / 2) as isize;
        let win = window.symmetric(taps);
        let coefficients: Vec<f64> = (0..taps)
            .map(|i| {
                let n = (i as isize - mid) as f64;
                (2.0 * f2 * sinc(2.0 * f2 * n) - 2.0 * f1 * sinc(2.0 * f1 * n)) * win[i]
            })
            .collect();
        Ok(FirFilter::from_raw(coefficients))
    }

    /// A process-wide memoised [`FirFilter::low_pass`]: the same design
    /// parameters return the same `Arc`'d filter (with its kernel spectrum
    /// already warm after first use), so per-call hot paths like the ADC
    /// anti-alias stage stop re-running the windowed-sinc design.
    pub fn low_pass_cached(
        cutoff_hz: f64,
        sample_rate_hz: f64,
        taps: usize,
        window: WindowKind,
    ) -> Result<Arc<Self>> {
        static MEMO: OnceLock<Mutex<HashMap<String, Arc<FirFilter>>>> = OnceLock::new();
        let key = format!(
            "{:x}|{:x}|{taps}|{window:?}",
            cutoff_hz.to_bits(),
            sample_rate_hz.to_bits()
        );
        let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = memo.lock().expect("fir design memo poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        // Design outside the lock; on a race the first insert wins, which
        // is harmless because the design is deterministic.
        let designed = Arc::new(FirFilter::low_pass(
            cutoff_hz,
            sample_rate_hz,
            taps,
            window,
        )?);
        let mut guard = memo.lock().expect("fir design memo poisoned");
        let entry = guard.entry(key).or_insert(designed);
        Ok(Arc::clone(entry))
    }

    /// Filter coefficients (impulse response).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.coefficients.len()
    }

    /// `true` if the filter has no taps (cannot occur for designed filters).
    pub fn is_empty(&self) -> bool {
        self.coefficients.is_empty()
    }

    /// Group delay in samples (exact for the symmetric designs above).
    pub fn group_delay_samples(&self) -> usize {
        (self.coefficients.len() - 1) / 2
    }

    /// Applies the filter by linear convolution, keeping the central portion
    /// so the output has the same length as the input and is time-aligned
    /// with it (the group delay is compensated).
    pub fn filter(&self, input: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.filter_into(input, &mut out)?;
        Ok(out)
    }

    /// [`FirFilter::filter`] writing into a caller-owned vector (cleared
    /// and resized), so hot loops can reuse the output allocation.
    ///
    /// Large products of `input.len() · taps` go through overlap-save FFT
    /// convolution against the filter's cached kernel spectrum; small ones
    /// use direct convolution.
    pub fn filter_into(&self, input: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if input.is_empty() {
            return Err(DspError::EmptyInput {
                operation: "FirFilter::filter",
            });
        }
        let delay = self.group_delay_samples();
        if input.len().saturating_mul(self.coefficients.len()) > 16_384 {
            let mut full = Vec::new();
            self.kernel_spectrum().convolve_into(input, &mut full)?;
            out.clear();
            out.extend_from_slice(&full[delay..delay + input.len()]);
        } else {
            let full = direct_convolve(input, &self.coefficients);
            out.clear();
            out.extend_from_slice(&full[delay..delay + input.len()]);
        }
        Ok(())
    }

    /// The filter's kernel spectrum, transformed once on first use.
    pub fn kernel_spectrum(&self) -> &KernelSpectrum {
        self.spectrum.get_or_init(|| {
            // Designed/validated filters are never empty, so this cannot
            // fail.
            Arc::new(KernelSpectrum::new(&self.coefficients).expect("FirFilter taps are non-empty"))
        })
    }

    /// Applies the filter to a [`Signal`], preserving its sample rate.
    pub fn filter_signal(&self, input: &Signal) -> Result<Signal> {
        let samples = self.filter(input.samples())?;
        Signal::new(samples, input.sample_rate_hz())
    }

    /// Zero-phase filtering: forward pass, reverse, forward pass, reverse.
    /// The magnitude response is applied twice (squared) but the phase is
    /// exactly zero.
    pub fn filtfilt(&self, input: &[f64]) -> Result<Vec<f64>> {
        let forward = self.filter(input)?;
        let mut reversed: Vec<f64> = forward.into_iter().rev().collect();
        reversed = self.filter(&reversed)?;
        reversed.reverse();
        Ok(reversed)
    }

    /// Magnitude response at `frequency_hz` given `sample_rate_hz`.
    pub fn magnitude_response(&self, frequency_hz: f64, sample_rate_hz: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * frequency_hz / sample_rate_hz;
        let mut re = 0.0;
        let mut im = 0.0;
        for (n, &c) in self.coefficients.iter().enumerate() {
            re += c * (w * n as f64).cos();
            im -= c * (w * n as f64).sin();
        }
        re.hypot(im)
    }

    /// Scales the coefficients so the DC gain is exactly 1 (for low-pass
    /// prototypes).
    fn normalize_dc_gain(&mut self) {
        let sum: f64 = self.coefficients.iter().sum();
        if sum.abs() > 1e-15 {
            for c in &mut self.coefficients {
                *c /= sum;
            }
        }
    }
}

/// Normalised sinc: `sin(pi x) / (pi x)`.
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

fn make_odd(taps: usize) -> usize {
    if taps % 2 == 0 {
        taps + 1
    } else {
        taps
    }
}

fn validate(cutoff_hz: f64, sample_rate_hz: f64, taps: usize) -> Result<()> {
    if !(sample_rate_hz > 0.0) {
        return Err(DspError::InvalidSampleRate { sample_rate_hz });
    }
    let nyquist = sample_rate_hz / 2.0;
    if cutoff_hz <= 0.0 || cutoff_hz >= nyquist {
        return Err(DspError::InvalidFrequency {
            frequency_hz: cutoff_hz,
            nyquist_hz: nyquist,
        });
    }
    if taps < 3 {
        return Err(DspError::invalid_parameter(
            "taps",
            format!("{taps} is too few; need at least 3"),
        ));
    }
    Ok(())
}

fn direct_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn design_validation() {
        assert!(FirFilter::low_pass(0.0, 48_000.0, 101, WindowKind::Hamming).is_err());
        assert!(FirFilter::low_pass(30_000.0, 48_000.0, 101, WindowKind::Hamming).is_err());
        assert!(FirFilter::low_pass(1_000.0, 0.0, 101, WindowKind::Hamming).is_err());
        assert!(FirFilter::low_pass(1_000.0, 48_000.0, 2, WindowKind::Hamming).is_err());
        assert!(
            FirFilter::band_pass(2_000.0, 1_000.0, 48_000.0, 101, WindowKind::Hamming).is_err()
        );
        assert!(FirFilter::from_coefficients(vec![]).is_err());
    }

    #[test]
    fn even_tap_requests_are_made_odd() {
        let f = FirFilter::low_pass(1_000.0, 48_000.0, 100, WindowKind::Hamming).unwrap();
        assert_eq!(f.len() % 2, 1);
    }

    #[test]
    fn low_pass_passes_low_and_rejects_high() {
        let fs = 48_000.0;
        let f = FirFilter::low_pass(4_000.0, fs, 201, WindowKind::Hamming).unwrap();
        let low = tone(1_000.0, fs, 4_800);
        let high = tone(12_000.0, fs, 4_800);
        let low_out = f.filter(&low).unwrap();
        let high_out = f.filter(&high).unwrap();
        // Compare only the steady-state middle to avoid edge transients.
        let mid = 1_000..3_800;
        let low_ratio = rms(&low_out[mid.clone()]) / rms(&low[mid.clone()]);
        let high_ratio = rms(&high_out[mid.clone()]) / rms(&high[mid]);
        assert!(
            low_ratio > 0.95,
            "passband attenuation too high: {low_ratio}"
        );
        assert!(high_ratio < 0.01, "stopband leakage too high: {high_ratio}");
    }

    #[test]
    fn high_pass_rejects_low_and_passes_high() {
        let fs = 48_000.0;
        let f = FirFilter::high_pass(4_000.0, fs, 201, WindowKind::Hamming).unwrap();
        let low = tone(500.0, fs, 4_800);
        let high = tone(10_000.0, fs, 4_800);
        let mid = 1_000..3_800;
        let low_ratio = rms(&f.filter(&low).unwrap()[mid.clone()]) / rms(&low[mid.clone()]);
        let high_ratio = rms(&f.filter(&high).unwrap()[mid.clone()]) / rms(&high[mid]);
        assert!(low_ratio < 0.02, "stopband leakage too high: {low_ratio}");
        assert!(
            high_ratio > 0.9,
            "passband attenuation too high: {high_ratio}"
        );
    }

    #[test]
    fn band_pass_selects_the_band() {
        let fs = 48_000.0;
        let f = FirFilter::band_pass(2_000.0, 6_000.0, fs, 301, WindowKind::Hamming).unwrap();
        let inside = tone(4_000.0, fs, 4_800);
        let below = tone(500.0, fs, 4_800);
        let above = tone(12_000.0, fs, 4_800);
        let mid = 1_000..3_800;
        assert!(rms(&f.filter(&inside).unwrap()[mid.clone()]) / rms(&inside[mid.clone()]) > 0.9);
        assert!(rms(&f.filter(&below).unwrap()[mid.clone()]) / rms(&below[mid.clone()]) < 0.03);
        assert!(rms(&f.filter(&above).unwrap()[mid.clone()]) / rms(&above[mid]) < 0.03);
    }

    #[test]
    fn magnitude_response_matches_filtering() {
        let fs = 48_000.0;
        let f = FirFilter::low_pass(4_000.0, fs, 201, WindowKind::Hamming).unwrap();
        assert!((f.magnitude_response(0.0, fs) - 1.0).abs() < 1e-6);
        assert!(f.magnitude_response(1_000.0, fs) > 0.95);
        assert!(f.magnitude_response(12_000.0, fs) < 0.01);
    }

    #[test]
    fn filter_output_is_time_aligned() {
        let fs = 8_000.0;
        let f = FirFilter::low_pass(1_000.0, fs, 101, WindowKind::Hamming).unwrap();
        // An impulse in the middle should come out centred at the same index.
        let mut x = vec![0.0; 400];
        x[200] = 1.0;
        let y = f.filter(&x).unwrap();
        assert_eq!(y.len(), x.len());
        let peak_index = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_index, 200);
    }

    #[test]
    fn filtfilt_has_zero_phase() {
        let fs = 8_000.0;
        let f = FirFilter::low_pass(1_500.0, fs, 101, WindowKind::Hamming).unwrap();
        let x = tone(500.0, fs, 2_000);
        let y = f.filtfilt(&x).unwrap();
        assert_eq!(y.len(), x.len());
        // Zero phase: peak cross-correlation at zero lag within the steady state.
        let mid = 500..1_500usize;
        let mut best_lag = 0isize;
        let mut best = f64::MIN;
        for lag in -10isize..=10 {
            let mut acc = 0.0;
            for i in mid.clone() {
                let j = i as isize + lag;
                if j >= 0 && (j as usize) < x.len() {
                    acc += x[i] * y[j as usize];
                }
            }
            if acc > best {
                best = acc;
                best_lag = lag;
            }
        }
        assert_eq!(best_lag, 0);
    }

    #[test]
    fn filter_signal_preserves_rate() {
        let s = Signal::tone(440.0, 1.0, 0.2, 8_000.0).unwrap();
        let f = FirFilter::low_pass(1_000.0, 8_000.0, 51, WindowKind::Hamming).unwrap();
        let out = f.filter_signal(&s).unwrap();
        assert_eq!(out.sample_rate_hz(), 8_000.0);
        assert_eq!(out.len(), s.len());
    }

    #[test]
    fn rejects_empty_input() {
        let f = FirFilter::low_pass(1_000.0, 8_000.0, 51, WindowKind::Hamming).unwrap();
        assert!(f.filter(&[]).is_err());
    }
}
