//! Sample-rate conversion.
//!
//! The attack pipeline needs to move between very different rates: voice
//! commands are synthesised at 48 kHz, the ultrasonic playback signal lives
//! at 192 kHz (or higher, to fit a 40–60 kHz carrier), and the victim
//! microphone resamples back down to 48 kHz or 16 kHz.  Integer-factor
//! conversion uses zero-stuffing / decimation with a half-band-style FIR
//! anti-alias filter; arbitrary ratios fall back to band-limited linear
//! interpolation after appropriate filtering.

use crate::error::{DspError, Result};
use crate::filter::fir::FirFilter;
use crate::signal::Signal;
use crate::window::WindowKind;

/// Upsamples by an integer `factor`: zero-stuffing followed by an
/// interpolation low-pass at the original Nyquist frequency.
pub fn upsample(input: &Signal, factor: usize) -> Result<Signal> {
    if factor == 0 {
        return Err(DspError::invalid_parameter("factor", "must be at least 1"));
    }
    if input.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "upsample",
        });
    }
    if factor == 1 {
        return Ok(input.clone());
    }
    let out_rate = input.sample_rate_hz() * factor as f64;
    let mut stuffed = vec![0.0; input.len() * factor];
    for (i, &x) in input.samples().iter().enumerate() {
        stuffed[i * factor] = x * factor as f64; // compensate interpolation gain
    }
    // Anti-image filter at the original Nyquist, with a little margin.
    let cutoff = input.nyquist_hz() * 0.95;
    let taps = (16 * factor + 1).max(65);
    let lpf = FirFilter::low_pass_cached(cutoff, out_rate, taps, WindowKind::Blackman)?;
    let filtered = lpf.filter(&stuffed)?;
    Signal::new(filtered, out_rate)
}

/// Downsamples by an integer `factor`: anti-alias low-pass then decimation.
pub fn downsample(input: &Signal, factor: usize) -> Result<Signal> {
    if factor == 0 {
        return Err(DspError::invalid_parameter("factor", "must be at least 1"));
    }
    if input.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "downsample",
        });
    }
    if factor == 1 {
        return Ok(input.clone());
    }
    let out_rate = input.sample_rate_hz() / factor as f64;
    let cutoff = (out_rate / 2.0) * 0.95;
    let taps = (16 * factor + 1).max(65);
    let lpf =
        FirFilter::low_pass_cached(cutoff, input.sample_rate_hz(), taps, WindowKind::Blackman)?;
    let filtered = lpf.filter(input.samples())?;
    let decimated: Vec<f64> = filtered.iter().step_by(factor).copied().collect();
    Signal::new(decimated, out_rate)
}

/// Resamples to an arbitrary target rate.
///
/// Integer up/down factors take the exact polyphase-style path; other ratios
/// are handled by upsampling to a common fine grid when the ratio is a small
/// rational, and otherwise by band-limited linear interpolation (adequate
/// for the smooth, heavily oversampled signals used in this workspace).
pub fn resample(input: &Signal, target_rate_hz: f64) -> Result<Signal> {
    if !(target_rate_hz > 0.0) || !target_rate_hz.is_finite() {
        return Err(DspError::InvalidSampleRate {
            sample_rate_hz: target_rate_hz,
        });
    }
    if input.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "resample",
        });
    }
    let source_rate = input.sample_rate_hz();
    if (source_rate - target_rate_hz).abs() < 1e-9 {
        return Ok(input.clone());
    }
    let ratio = target_rate_hz / source_rate;
    // Exact integer factors.
    if (ratio.round() - ratio).abs() < 1e-9 && ratio >= 1.0 {
        return upsample(input, ratio.round() as usize);
    }
    let inv = source_rate / target_rate_hz;
    if (inv.round() - inv).abs() < 1e-9 && inv >= 1.0 {
        return downsample(input, inv.round() as usize);
    }
    // General path: if downsampling, anti-alias first, then linearly
    // interpolate onto the target grid.
    let working: Signal = if target_rate_hz < source_rate {
        let cutoff = (target_rate_hz / 2.0) * 0.95;
        let lpf = FirFilter::low_pass_cached(cutoff, source_rate, 255, WindowKind::Blackman)?;
        lpf.filter_signal(input)?
    } else {
        input.clone()
    };
    let out_len = ((input.len() as f64) * ratio).round() as usize;
    let samples = working.samples();
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let t = i as f64 / ratio;
        let i0 = t.floor() as usize;
        let frac = t - i0 as f64;
        let a = samples.get(i0).copied().unwrap_or(0.0);
        let b = samples.get(i0 + 1).copied().unwrap_or(a);
        out.push(a + (b - a) * frac);
    }
    Signal::new(out, target_rate_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::band_power;

    fn tone(freq: f64, fs: f64, dur: f64) -> Signal {
        Signal::tone(freq, 1.0, dur, fs).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        let s = tone(1_000.0, 48_000.0, 0.1);
        assert!(upsample(&s, 0).is_err());
        assert!(downsample(&s, 0).is_err());
        assert!(resample(&s, 0.0).is_err());
        assert!(resample(&s, f64::NAN).is_err());
        let empty = Signal::new(vec![], 48_000.0).unwrap();
        assert!(upsample(&empty, 2).is_err());
        assert!(downsample(&empty, 2).is_err());
        assert!(resample(&empty, 96_000.0).is_err());
    }

    #[test]
    fn factor_one_is_identity() {
        let s = tone(1_000.0, 48_000.0, 0.05);
        assert_eq!(upsample(&s, 1).unwrap(), s);
        assert_eq!(downsample(&s, 1).unwrap(), s);
        assert_eq!(resample(&s, 48_000.0).unwrap(), s);
    }

    #[test]
    fn upsampling_quadruples_rate_and_preserves_tone() {
        let s = tone(1_000.0, 48_000.0, 0.2);
        let up = upsample(&s, 4).unwrap();
        assert_eq!(up.sample_rate_hz(), 192_000.0);
        assert_eq!(up.len(), s.len() * 4);
        // Tone survives with roughly the same RMS (within filter ripple).
        assert!((up.rms() - s.rms()).abs() / s.rms() < 0.1);
        // No image energy near 47 kHz (192k/4 - 1k image would be at 47k/49k).
        let image = band_power(up.samples(), up.sample_rate_hz(), 40_000.0, 60_000.0).unwrap();
        let fundamental = band_power(up.samples(), up.sample_rate_hz(), 500.0, 1_500.0).unwrap();
        assert!(
            image / fundamental < 1e-4,
            "image/fundamental = {}",
            image / fundamental
        );
    }

    #[test]
    fn downsampling_halves_rate_and_removes_high_band() {
        let fs = 48_000.0;
        let mut s = tone(1_000.0, fs, 0.2);
        let high = tone(20_000.0, fs, 0.2);
        s.mix(&high).unwrap();
        let down = downsample(&s, 2).unwrap();
        assert_eq!(down.sample_rate_hz(), 24_000.0);
        // The 20 kHz component is above the new Nyquist and must not alias in.
        let alias_band = band_power(down.samples(), 24_000.0, 3_000.0, 11_000.0).unwrap();
        let tone_band = band_power(down.samples(), 24_000.0, 500.0, 1_500.0).unwrap();
        assert!(alias_band / tone_band < 1e-3);
    }

    #[test]
    fn roundtrip_up_down_preserves_signal() {
        let s = tone(2_000.0, 48_000.0, 0.2);
        let up = upsample(&s, 4).unwrap();
        let back = downsample(&up, 4).unwrap();
        assert_eq!(back.sample_rate_hz(), 48_000.0);
        // Compare steady-state RMS.
        let a = s.slice_seconds(0.05, 0.15).rms();
        let b = back.slice_seconds(0.05, 0.15).rms();
        assert!((a - b).abs() / a < 0.05, "rms {a} vs {b}");
    }

    #[test]
    fn arbitrary_ratio_resampling() {
        let s = tone(1_000.0, 48_000.0, 0.2);
        let out = resample(&s, 44_100.0).unwrap();
        assert_eq!(out.sample_rate_hz(), 44_100.0);
        let expected_len = (s.len() as f64 * 44_100.0 / 48_000.0).round() as usize;
        assert_eq!(out.len(), expected_len);
        // The tone is still there.
        let p = band_power(out.samples(), 44_100.0, 800.0, 1_200.0).unwrap();
        let total = band_power(out.samples(), 44_100.0, 10.0, 22_000.0).unwrap();
        assert!(p / total > 0.9);
    }

    #[test]
    fn resample_to_lower_non_integer_rate_antialiases() {
        let fs = 48_000.0;
        let mut s = tone(1_000.0, fs, 0.2);
        s.mix(&tone(15_000.0, fs, 0.2)).unwrap();
        let out = resample(&s, 16_000.0).unwrap();
        assert_eq!(out.sample_rate_hz(), 16_000.0);
        let alias = band_power(out.samples(), 16_000.0, 2_000.0, 7_500.0).unwrap();
        let tone_band = band_power(out.samples(), 16_000.0, 800.0, 1_200.0).unwrap();
        assert!(
            alias / tone_band < 0.01,
            "alias ratio {}",
            alias / tone_band
        );
    }
}
