//! Analysis window functions.
//!
//! Windows are used by the STFT, Welch PSD estimation and FIR design.  All
//! windows are symmetric ("periodic" variants can be obtained by generating
//! `n + 1` points and dropping the last, which [`WindowKind::periodic`]
//! does for STFT use).

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Rectangular (no tapering).
    Rectangular,
    /// Hann (raised cosine), the default analysis window.
    Hann,
    /// Hamming, slightly higher sidelobes but narrower main lobe than Hann.
    Hamming,
    /// Blackman, low sidelobes for spectral purity measurements.
    Blackman,
    /// Bartlett (triangular).
    Bartlett,
    /// Flat-top, for accurate amplitude measurement of tones.
    FlatTop,
}

impl WindowKind {
    /// Generates a symmetric window of length `n`.
    pub fn symmetric(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n).map(|i| self.sample(i as f64 / denom)).collect()
    }

    /// Generates a periodic window of length `n`, appropriate for STFT
    /// analysis with overlap-add.
    pub fn periodic(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let denom = n as f64;
        (0..n).map(|i| self.sample(i as f64 / denom)).collect()
    }

    /// Window value at normalised position `x` in `[0, 1]`.
    fn sample(self, x: f64) -> f64 {
        use std::f64::consts::PI;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            WindowKind::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            WindowKind::Bartlett => 1.0 - (2.0 * x - 1.0).abs(),
            WindowKind::FlatTop => {
                0.215_578_95 - 0.416_631_58 * (2.0 * PI * x).cos()
                    + 0.277_263_158 * (4.0 * PI * x).cos()
                    - 0.083_578_947 * (6.0 * PI * x).cos()
                    + 0.006_947_368 * (8.0 * PI * x).cos()
            }
        }
    }

    /// Coherent gain: mean of the window samples.  Dividing a tone's
    /// spectral peak by this compensates the window's amplitude loss.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.symmetric(n);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins, used to normalise PSD estimates.
    pub fn enbw_bins(self, n: usize) -> f64 {
        let w = self.symmetric(n);
        let sum: f64 = w.iter().sum();
        let sum_sq: f64 = w.iter().map(|x| x * x).sum();
        if sum == 0.0 {
            return 0.0;
        }
        n as f64 * sum_sq / (sum * sum)
    }
}

/// Multiplies `samples` by `window` element-wise, returning a new vector.
///
/// The shorter of the two lengths is used.
pub fn apply_window(samples: &[f64], window: &[f64]) -> Vec<f64> {
    samples
        .iter()
        .zip(window.iter())
        .map(|(s, w)| s * w)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_degenerate_cases() {
        assert!(WindowKind::Hann.symmetric(0).is_empty());
        assert_eq!(WindowKind::Hann.symmetric(1), vec![1.0]);
        assert_eq!(WindowKind::Hamming.symmetric(32).len(), 32);
        assert_eq!(WindowKind::Blackman.periodic(33).len(), 33);
    }

    #[test]
    fn hann_is_symmetric_and_zero_at_edges() {
        let w = WindowKind::Hann.symmetric(65);
        assert!(w[0].abs() < 1e-12);
        assert!(w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
        for i in 0..w.len() {
            assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let w = WindowKind::Hamming.symmetric(21);
        assert!((w[0] - 0.08).abs() < 1e-9);
        assert!((w[20] - 0.08).abs() < 1e-9);
    }

    #[test]
    fn rectangular_is_all_ones() {
        let w = WindowKind::Rectangular.symmetric(10);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-15));
        assert!((WindowKind::Rectangular.coherent_gain(10) - 1.0).abs() < 1e-12);
        assert!((WindowKind::Rectangular.enbw_bins(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bartlett_peaks_at_centre() {
        let w = WindowKind::Bartlett.symmetric(11);
        assert!((w[5] - 1.0).abs() < 1e-12);
        assert!(w[0].abs() < 1e-12);
    }

    #[test]
    fn coherent_gain_of_hann_is_half() {
        // For large N the mean of a Hann window approaches 0.5.
        let g = WindowKind::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3);
    }

    #[test]
    fn enbw_of_hann_is_one_and_a_half_bins() {
        let enbw = WindowKind::Hann.enbw_bins(4096);
        assert!((enbw - 1.5).abs() < 2e-3, "enbw = {enbw}");
    }

    #[test]
    fn windows_are_bounded_by_unity() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Bartlett,
        ] {
            for &v in &kind.symmetric(257) {
                assert!((-1e-12..=1.0 + 1e-12).contains(&v), "{kind:?} produced {v}");
            }
        }
    }

    #[test]
    fn apply_window_multiplies_elementwise() {
        let s = [2.0, 2.0, 2.0];
        let w = [0.0, 0.5, 1.0];
        assert_eq!(apply_window(&s, &w), vec![0.0, 1.0, 2.0]);
        // Mismatched lengths truncate to the shorter.
        assert_eq!(apply_window(&s[..2], &w).len(), 2);
    }
}
