//! Envelope extraction and the analytic signal.
//!
//! The defense's central feature compares the *squared envelope* of the
//! voice band against the low-frequency "shadow" that non-linear
//! demodulation leaves behind, so a reliable envelope estimate matters.
//! Two estimators are provided: the Hilbert-transform analytic signal
//! (accurate, FFT-based) and a cheap rectify-and-smooth detector (what a
//! hardware envelope detector does).

use crate::complex::Complex;
use crate::error::{DspError, Result};
use crate::fft::{fft_in_place, next_power_of_two};
use crate::filter::biquad::BiquadCascade;
use crate::signal::Signal;

/// Computes the analytic signal of `samples` via the FFT method:
/// zero the negative frequencies, double the positive ones.
pub fn analytic_signal(samples: &[f64]) -> Result<Vec<Complex>> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "analytic_signal",
        });
    }
    let n = next_power_of_two(samples.len());
    let mut buffer = vec![Complex::ZERO; n];
    for (slot, &x) in buffer.iter_mut().zip(samples.iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut buffer, false)?;
    // Build the analytic spectrum.
    for (k, value) in buffer.iter_mut().enumerate() {
        if k == 0 || k == n / 2 {
            // DC and Nyquist stay as they are.
        } else if k < n / 2 {
            *value = value.scale(2.0);
        } else {
            *value = Complex::ZERO;
        }
    }
    fft_in_place(&mut buffer, true)?;
    buffer.truncate(samples.len());
    Ok(buffer)
}

/// Amplitude envelope via the analytic signal (Hilbert method).
pub fn hilbert_envelope(samples: &[f64]) -> Result<Vec<f64>> {
    Ok(analytic_signal(samples)?
        .into_iter()
        .map(|c| c.abs())
        .collect())
}

/// Instantaneous phase of the analytic signal, in radians (not unwrapped).
pub fn instantaneous_phase(samples: &[f64]) -> Result<Vec<f64>> {
    Ok(analytic_signal(samples)?
        .into_iter()
        .map(|c| c.arg())
        .collect())
}

/// Rectify-and-smooth envelope detector: absolute value followed by a
/// low-pass filter at `cutoff_hz`.  This mirrors the behaviour of an analog
/// AM envelope detector and of the `s²` term of a non-linear microphone.
pub fn rectified_envelope(
    samples: &[f64],
    sample_rate_hz: f64,
    cutoff_hz: f64,
) -> Result<Vec<f64>> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "rectified_envelope",
        });
    }
    let rectified: Vec<f64> = samples.iter().map(|x| x.abs()).collect();
    let lpf = BiquadCascade::butterworth_low_pass(cutoff_hz, 4, sample_rate_hz)?;
    Ok(lpf.filtfilt(&rectified))
}

/// Envelope of a [`Signal`] using the Hilbert method, returned as a signal
/// at the same rate.
pub fn envelope_signal(input: &Signal) -> Result<Signal> {
    Signal::new(hilbert_envelope(input.samples())?, input.sample_rate_hz())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(analytic_signal(&[]).is_err());
        assert!(hilbert_envelope(&[]).is_err());
        assert!(rectified_envelope(&[], 48_000.0, 100.0).is_err());
    }

    #[test]
    fn envelope_of_pure_tone_is_constant() {
        let fs = 8_000.0;
        let sig = Signal::tone(1_000.0, 0.7, 0.25, fs).unwrap();
        let env = hilbert_envelope(sig.samples()).unwrap();
        // Skip edges where the FFT method has boundary effects.
        for &e in &env[200..env.len() - 200] {
            assert!((e - 0.7).abs() < 0.02, "envelope {e}");
        }
    }

    #[test]
    fn envelope_tracks_amplitude_modulation() {
        let fs = 48_000.0;
        let n = 48_000;
        let carrier = 8_000.0;
        let mod_freq = 20.0;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let m = 1.0 + 0.5 * (2.0 * std::f64::consts::PI * mod_freq * t).sin();
                m * (2.0 * std::f64::consts::PI * carrier * t).sin()
            })
            .collect();
        let env = hilbert_envelope(&x).unwrap();
        let mid = &env[4_800..43_200];
        let max = mid.iter().cloned().fold(f64::MIN, f64::max);
        let min = mid.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 1.5).abs() < 0.05, "max {max}");
        assert!((min - 0.5).abs() < 0.05, "min {min}");
    }

    #[test]
    fn analytic_signal_real_part_matches_input() {
        let fs = 8_000.0;
        let sig = Signal::tone(500.0, 1.0, 0.1, fs).unwrap();
        let a = analytic_signal(sig.samples()).unwrap();
        for (c, &x) in a.iter().zip(sig.samples().iter()).skip(50).take(500) {
            assert!((c.re - x).abs() < 1e-6);
        }
    }

    #[test]
    fn instantaneous_phase_advances_at_tone_rate() {
        let fs = 8_000.0;
        let f = 400.0;
        let sig = Signal::tone(f, 1.0, 0.25, fs).unwrap();
        let phase = instantaneous_phase(sig.samples()).unwrap();
        // Average phase increment should be 2*pi*f/fs.
        let mut increments = Vec::new();
        for i in 501..1_500 {
            let mut d = phase[i] - phase[i - 1];
            while d < 0.0 {
                d += 2.0 * std::f64::consts::PI;
            }
            increments.push(d);
        }
        let mean: f64 = increments.iter().sum::<f64>() / increments.len() as f64;
        let expected = 2.0 * std::f64::consts::PI * f / fs;
        assert!((mean - expected).abs() / expected < 0.01);
    }

    #[test]
    fn rectified_envelope_approximates_hilbert_for_am_signal() {
        let fs = 48_000.0;
        let n = 24_000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let m = 1.0 + 0.8 * (2.0 * std::f64::consts::PI * 15.0 * t).sin();
                m * (2.0 * std::f64::consts::PI * 6_000.0 * t).sin()
            })
            .collect();
        let rect = rectified_envelope(&x, fs, 100.0).unwrap();
        let hilb = hilbert_envelope(&x).unwrap();
        // The rectified detector reads about 2/pi of the true envelope.
        let scale = 2.0 / std::f64::consts::PI;
        let mid = 4_800..19_200;
        let mut err_acc = 0.0;
        for i in mid.clone() {
            err_acc += (rect[i] - scale * hilb[i]).abs();
        }
        let mean_err = err_acc / (mid.end - mid.start) as f64;
        assert!(mean_err < 0.1, "mean deviation {mean_err}");
    }

    #[test]
    fn envelope_signal_preserves_rate_and_length() {
        let sig = Signal::tone(1_000.0, 1.0, 0.1, 16_000.0).unwrap();
        let env = envelope_signal(&sig).unwrap();
        assert_eq!(env.len(), sig.len());
        assert_eq!(env.sample_rate_hz(), 16_000.0);
    }
}
