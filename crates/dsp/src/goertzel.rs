//! Goertzel algorithm: efficient single-bin DFT evaluation.
//!
//! Used where only a handful of frequencies matter — e.g. measuring the
//! residual carrier line in a recorded attack signal, or the power at an
//! intermodulation product — without paying for a full FFT.

use crate::error::{DspError, Result};

/// Magnitude of the DFT of `samples` evaluated at `frequency_hz`.
pub fn goertzel_magnitude(samples: &[f64], sample_rate_hz: f64, frequency_hz: f64) -> Result<f64> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "goertzel_magnitude",
        });
    }
    if !(sample_rate_hz > 0.0) {
        return Err(DspError::InvalidSampleRate { sample_rate_hz });
    }
    if frequency_hz < 0.0 || frequency_hz > sample_rate_hz / 2.0 {
        return Err(DspError::InvalidFrequency {
            frequency_hz,
            nyquist_hz: sample_rate_hz / 2.0,
        });
    }
    let n = samples.len() as f64;
    let k = (0.5 + n * frequency_hz / sample_rate_hz).floor();
    let w = 2.0 * std::f64::consts::PI * k / n;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &x in samples {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
    Ok(power.max(0.0).sqrt())
}

/// Normalised tone amplitude at `frequency_hz`: the Goertzel magnitude
/// scaled by `2 / N`, so a unit-amplitude sine at that frequency reads ≈ 1.
pub fn tone_amplitude(samples: &[f64], sample_rate_hz: f64, frequency_hz: f64) -> Result<f64> {
    let mag = goertzel_magnitude(samples, sample_rate_hz, frequency_hz)?;
    Ok(2.0 * mag / samples.len() as f64)
}

/// Evaluates [`tone_amplitude`] at several frequencies at once.
pub fn tone_amplitudes(
    samples: &[f64],
    sample_rate_hz: f64,
    frequencies_hz: &[f64],
) -> Result<Vec<f64>> {
    frequencies_hz
        .iter()
        .map(|&f| tone_amplitude(samples, sample_rate_hz, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    #[test]
    fn validation() {
        assert!(goertzel_magnitude(&[], 8_000.0, 100.0).is_err());
        assert!(goertzel_magnitude(&[1.0], 0.0, 100.0).is_err());
        assert!(goertzel_magnitude(&[1.0; 16], 8_000.0, 5_000.0).is_err());
        assert!(goertzel_magnitude(&[1.0; 16], 8_000.0, -1.0).is_err());
    }

    #[test]
    fn detects_present_tone_amplitude() {
        let fs = 48_000.0;
        let s = Signal::tone(1_000.0, 0.7, 0.5, fs).unwrap();
        let a = tone_amplitude(s.samples(), fs, 1_000.0).unwrap();
        assert!((a - 0.7).abs() < 0.01, "amplitude {a}");
    }

    #[test]
    fn rejects_absent_tone() {
        let fs = 48_000.0;
        let s = Signal::tone(1_000.0, 1.0, 0.5, fs).unwrap();
        let a = tone_amplitude(s.samples(), fs, 7_000.0).unwrap();
        assert!(a < 0.01, "amplitude {a}");
    }

    #[test]
    fn resolves_mixture_components() {
        let fs = 48_000.0;
        let mut s = Signal::tone(1_000.0, 0.5, 0.5, fs).unwrap();
        s.mix(&Signal::tone(3_000.0, 0.25, 0.5, fs).unwrap())
            .unwrap();
        let amps = tone_amplitudes(s.samples(), fs, &[1_000.0, 3_000.0, 5_000.0]).unwrap();
        assert!((amps[0] - 0.5).abs() < 0.02);
        assert!((amps[1] - 0.25).abs() < 0.02);
        assert!(amps[2] < 0.02);
    }

    #[test]
    fn dc_and_nyquist_edges_do_not_error() {
        let fs = 8_000.0;
        let s = vec![0.5; 800];
        assert!(goertzel_magnitude(&s, fs, 0.0).is_ok());
        assert!(goertzel_magnitude(&s, fs, 4_000.0).is_ok());
    }
}
