//! Sparse-tap convolution: applying a delay/gain tap list to a [`Signal`].
//!
//! A sparse impulse response — a handful of `(delay, gain)` taps rather
//! than a dense FIR — is how a room's early reflections reach a signal:
//! each tap is one propagation path (direct or reflected), its delay the
//! path's travel time and its gain the product of spreading, absorption
//! and surface losses.  Convolving against `T` taps costs `T · N`
//! multiply-adds, which for the few dozen taps of an image-source model is
//! far cheaper than a dense FFT convolution of the same reach.

use crate::error::{DspError, Result};
use crate::signal::Signal;

/// One tap of a sparse impulse response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseTap {
    /// Delay in whole samples.
    pub delay_samples: usize,
    /// Linear amplitude gain of this tap.
    pub gain: f64,
}

/// A sparse impulse response: a list of delay/gain taps.
///
/// Taps need not be sorted or unique; coincident delays simply add.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseTaps {
    /// The taps, in any order.
    pub taps: Vec<SparseTap>,
}

impl SparseTaps {
    /// Creates a tap list after validating every gain is finite.
    pub fn new(taps: Vec<SparseTap>) -> Result<Self> {
        for tap in &taps {
            if !tap.gain.is_finite() {
                return Err(DspError::invalid_parameter(
                    "gain",
                    format!("sparse tap gain {} is not finite", tap.gain),
                ));
            }
        }
        Ok(SparseTaps { taps })
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` when there are no taps.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The largest tap delay, in samples (0 when empty).
    pub fn max_delay_samples(&self) -> usize {
        self.taps.iter().map(|t| t.delay_samples).max().unwrap_or(0)
    }
}

/// Convolves `signal` against a sparse tap list:
/// `out[n + delay_t] += gain_t · signal[n]` for every tap `t`.
///
/// The output is `signal.len() + max_delay` samples long, so no tail is
/// truncated.  An empty tap list is rejected (it would silently produce
/// silence); an empty signal is returned unchanged in length.
pub fn convolve_sparse(signal: &Signal, taps: &SparseTaps) -> Result<Signal> {
    let mut out = Vec::new();
    convolve_sparse_into(signal, taps, &mut out)?;
    Signal::new(out, signal.sample_rate_hz())
}

/// [`convolve_sparse`] writing into a caller-owned buffer (cleared and
/// resized), so banded per-anchor convolution can reuse one allocation.
pub fn convolve_sparse_into(signal: &Signal, taps: &SparseTaps, out: &mut Vec<f64>) -> Result<()> {
    if taps.is_empty() {
        return Err(DspError::invalid_parameter("taps", "no taps provided"));
    }
    let n = signal.len();
    out.clear();
    out.resize(n + taps.max_delay_samples(), 0.0);
    for tap in &taps.taps {
        if tap.gain == 0.0 {
            continue;
        }
        let dst = &mut out[tap.delay_samples..tap.delay_samples + n];
        for (o, &x) in dst.iter_mut().zip(signal.samples().iter()) {
            *o += tap.gain * x;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impulse(fs: f64, len: usize, at: usize) -> Signal {
        let mut s = vec![0.0; len];
        s[at] = 1.0;
        Signal::new(s, fs).unwrap()
    }

    #[test]
    fn validation() {
        let s = impulse(48_000.0, 16, 0);
        assert!(convolve_sparse(&s, &SparseTaps::default()).is_err());
        assert!(SparseTaps::new(vec![SparseTap {
            delay_samples: 0,
            gain: f64::NAN,
        }])
        .is_err());
        let taps = SparseTaps::new(vec![SparseTap {
            delay_samples: 3,
            gain: 0.5,
        }])
        .unwrap();
        assert_eq!(taps.len(), 1);
        assert!(!taps.is_empty());
        assert_eq!(taps.max_delay_samples(), 3);
        assert_eq!(SparseTaps::default().max_delay_samples(), 0);
    }

    #[test]
    fn identity_tap_is_a_pure_delay() {
        let s = impulse(48_000.0, 8, 2);
        let taps = SparseTaps::new(vec![SparseTap {
            delay_samples: 5,
            gain: 1.0,
        }])
        .unwrap();
        let out = convolve_sparse(&s, &taps).unwrap();
        assert_eq!(out.len(), 13);
        assert_eq!(out.samples()[7], 1.0);
        assert_eq!(out.samples().iter().filter(|&&x| x != 0.0).count(), 1);
    }

    #[test]
    fn taps_superpose_linearly() {
        let s = impulse(48_000.0, 4, 0);
        let taps = SparseTaps::new(vec![
            SparseTap {
                delay_samples: 0,
                gain: 1.0,
            },
            SparseTap {
                delay_samples: 2,
                gain: -0.5,
            },
            SparseTap {
                delay_samples: 2,
                gain: 0.25,
            },
        ])
        .unwrap();
        let out = convolve_sparse(&s, &taps).unwrap();
        assert_eq!(out.samples(), &[1.0, 0.0, -0.25, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_gain_taps_do_not_lengthen_the_work_but_do_set_the_length() {
        // A zero tap still defines the output length (the tail exists, it
        // is just silent) — callers rely on the length contract alone.
        let s = impulse(48_000.0, 4, 0);
        let taps = SparseTaps::new(vec![
            SparseTap {
                delay_samples: 1,
                gain: 2.0,
            },
            SparseTap {
                delay_samples: 9,
                gain: 0.0,
            },
        ])
        .unwrap();
        let out = convolve_sparse(&s, &taps).unwrap();
        assert_eq!(out.len(), 13);
        assert_eq!(out.samples()[1], 2.0);
    }

    #[test]
    fn matches_dense_convolution() {
        // Sparse taps written out as a dense FIR give the same result via
        // the FFT convolution path.
        let fs = 48_000.0;
        let signal = Signal::tone(1_000.0, 0.7, 0.01, fs).unwrap();
        let taps = SparseTaps::new(vec![
            SparseTap {
                delay_samples: 0,
                gain: 0.9,
            },
            SparseTap {
                delay_samples: 7,
                gain: -0.4,
            },
            SparseTap {
                delay_samples: 31,
                gain: 0.2,
            },
        ])
        .unwrap();
        let sparse = convolve_sparse(&signal, &taps).unwrap();
        let mut dense = vec![0.0; 32];
        dense[0] = 0.9;
        dense[7] = -0.4;
        dense[31] = 0.2;
        let full = crate::fft::fft_convolve(signal.samples(), &dense).unwrap();
        assert_eq!(sparse.len(), signal.len() + 31);
        for (a, b) in sparse.samples().iter().zip(full.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
