//! Decibel conversions.
//!
//! Amplitude quantities (sample values, sound pressure) use the 20·log10
//! convention, power quantities (PSD bins, band power) use 10·log10.  A small
//! floor avoids `-inf` when converting silence.

/// Smallest ratio considered distinguishable from zero when converting to dB.
pub const DB_FLOOR_RATIO: f64 = 1e-12;

/// Converts an amplitude ratio to decibels (`20 log10`).
///
/// Values at or below zero are clamped to [`DB_FLOOR_RATIO`], yielding
/// −240 dB rather than negative infinity.
#[inline]
pub fn amplitude_to_db(amplitude_ratio: f64) -> f64 {
    20.0 * amplitude_ratio.max(DB_FLOOR_RATIO).log10()
}

/// Converts decibels to an amplitude ratio (`10^(dB/20)`).
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a power ratio to decibels (`10 log10`).
#[inline]
pub fn power_to_db(power_ratio: f64) -> f64 {
    10.0 * power_ratio.max(DB_FLOOR_RATIO * DB_FLOOR_RATIO).log10()
}

/// Converts decibels to a power ratio (`10^(dB/10)`).
#[inline]
pub fn db_to_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear amplitude ratio between two signals into the dB
/// difference, guarding against division by zero.
#[inline]
pub fn ratio_db(numerator: f64, denominator: f64) -> f64 {
    amplitude_to_db(numerator.abs().max(DB_FLOOR_RATIO) / denominator.abs().max(DB_FLOOR_RATIO))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_roundtrip() {
        for db in [-60.0, -20.0, -6.0, 0.0, 6.0, 20.0, 94.0] {
            let a = db_to_amplitude(db);
            assert!((amplitude_to_db(a) - db).abs() < 1e-9, "db={db}");
        }
    }

    #[test]
    fn power_roundtrip() {
        for db in [-30.0, -10.0, 0.0, 3.0, 10.0, 40.0] {
            let p = db_to_power(db);
            assert!((power_to_db(p) - db).abs() < 1e-9, "db={db}");
        }
    }

    #[test]
    fn known_values() {
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-9);
        assert!((amplitude_to_db(2.0) - 6.0206).abs() < 1e-3);
        assert!((power_to_db(2.0) - 3.0103).abs() < 1e-3);
        assert!((db_to_amplitude(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn silence_does_not_produce_infinity() {
        assert!(amplitude_to_db(0.0).is_finite());
        assert!(power_to_db(0.0).is_finite());
        assert!(amplitude_to_db(-1.0).is_finite());
    }

    #[test]
    fn ratio_db_is_symmetric_in_sign() {
        assert!((ratio_db(2.0, 1.0) - 6.0206).abs() < 1e-3);
        assert!((ratio_db(-2.0, 1.0) - 6.0206).abs() < 1e-3);
        assert!(ratio_db(0.0, 0.0).abs() < 1e-9);
    }
}
