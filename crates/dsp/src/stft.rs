//! Short-time Fourier transform and spectrogram summaries.
//!
//! Spectrograms drive the reproduction of the paper's qualitative figures
//! (normal voice vs. attack ultrasound vs. microphone recording) and provide
//! the time–frequency energy summaries that the speech front-end and the
//! defense features build on.

use crate::error::{DspError, Result};
use crate::fft::{fft_real_n, next_power_of_two};
use crate::window::WindowKind;

/// Magnitude/power spectrogram of a signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// Power (linear) per frame and bin: `frames[frame][bin]`.
    pub frames: Vec<Vec<f64>>,
    /// Centre time of each frame in seconds.
    pub times_s: Vec<f64>,
    /// Frequency of each bin in Hz.
    pub frequencies_hz: Vec<f64>,
    /// Hop between frames in samples.
    pub hop_samples: usize,
    /// Sample rate of the analysed signal.
    pub sample_rate_hz: f64,
}

/// Configuration for STFT analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StftConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between frames in samples.
    pub hop: usize,
    /// Window applied to each frame.
    pub window: WindowKind,
}

impl Default for StftConfig {
    fn default() -> Self {
        StftConfig {
            frame_len: 1_024,
            hop: 256,
            window: WindowKind::Hann,
        }
    }
}

impl StftConfig {
    /// A configuration with frame/hop expressed in seconds at a given rate.
    pub fn from_durations(frame_s: f64, hop_s: f64, sample_rate_hz: f64) -> Result<Self> {
        if !(sample_rate_hz > 0.0) {
            return Err(DspError::InvalidSampleRate { sample_rate_hz });
        }
        let frame_len = (frame_s * sample_rate_hz).round() as usize;
        let hop = (hop_s * sample_rate_hz).round() as usize;
        if frame_len < 8 || hop == 0 {
            return Err(DspError::invalid_parameter(
                "frame/hop",
                "frame must be >= 8 samples and hop >= 1 sample",
            ));
        }
        Ok(StftConfig {
            frame_len,
            hop,
            window: WindowKind::Hann,
        })
    }
}

/// Computes the power spectrogram of `samples`.
pub fn spectrogram(
    samples: &[f64],
    sample_rate_hz: f64,
    config: &StftConfig,
) -> Result<Spectrogram> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "spectrogram",
        });
    }
    if !(sample_rate_hz > 0.0) {
        return Err(DspError::InvalidSampleRate { sample_rate_hz });
    }
    if config.frame_len < 8 || config.hop == 0 {
        return Err(DspError::invalid_parameter(
            "StftConfig",
            "frame_len must be >= 8 and hop >= 1",
        ));
    }
    let nfft = next_power_of_two(config.frame_len);
    let n_bins = nfft / 2 + 1;
    let win = config.window.periodic(config.frame_len);
    let win_power: f64 = win.iter().map(|w| w * w).sum::<f64>().max(1e-300);

    let mut frames = Vec::new();
    let mut times_s = Vec::new();
    let mut start = 0usize;
    // Always emit at least one frame, zero-padding if the signal is short.
    loop {
        let end = (start + config.frame_len).min(samples.len());
        if start >= samples.len() && !frames.is_empty() {
            break;
        }
        let mut frame: Vec<f64> = samples[start..end]
            .iter()
            .zip(win.iter())
            .map(|(s, w)| s * w)
            .collect();
        frame.resize(nfft, 0.0);
        let spec = fft_real_n(&frame, nfft)?;
        let power: Vec<f64> = (0..n_bins)
            .map(|k| {
                let scale = if k == 0 || k == nfft / 2 { 1.0 } else { 2.0 };
                scale * spec[k].norm_sqr() / win_power
            })
            .collect();
        frames.push(power);
        times_s.push((start as f64 + config.frame_len as f64 / 2.0) / sample_rate_hz);
        start += config.hop;
        if start + config.frame_len > samples.len() + config.frame_len {
            break;
        }
        if start >= samples.len() {
            break;
        }
    }
    let frequencies_hz: Vec<f64> = (0..n_bins)
        .map(|k| k as f64 * sample_rate_hz / nfft as f64)
        .collect();
    Ok(Spectrogram {
        frames,
        times_s,
        frequencies_hz,
        hop_samples: config.hop,
        sample_rate_hz,
    })
}

impl Spectrogram {
    /// Number of analysis frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frequency bins per frame.
    pub fn num_bins(&self) -> usize {
        self.frequencies_hz.len()
    }

    /// Energy of each frame summed over all bins.
    pub fn frame_energies(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.iter().sum()).collect()
    }

    /// Mean power in a frequency band, averaged over all frames.
    pub fn mean_band_power(&self, low_hz: f64, high_hz: f64) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let bins: Vec<usize> = self
            .frequencies_hz
            .iter()
            .enumerate()
            .filter(|(_, f)| **f >= low_hz && **f <= high_hz)
            .map(|(i, _)| i)
            .collect();
        if bins.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for frame in &self.frames {
            for &b in &bins {
                acc += frame[b];
            }
        }
        acc / self.frames.len() as f64
    }

    /// Per-frame power in a frequency band (one value per frame).
    pub fn band_power_track(&self, low_hz: f64, high_hz: f64) -> Vec<f64> {
        let bins: Vec<usize> = self
            .frequencies_hz
            .iter()
            .enumerate()
            .filter(|(_, f)| **f >= low_hz && **f <= high_hz)
            .map(|(i, _)| i)
            .collect();
        self.frames
            .iter()
            .map(|frame| bins.iter().map(|&b| frame[b]).sum())
            .collect()
    }

    /// Frequency of the strongest bin in each frame.
    pub fn peak_frequency_track(&self) -> Vec<f64> {
        self.frames
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| self.frequencies_hz[i])
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// A coarse band-energy summary: splits `[0, max_hz]` into `n_bands`
    /// equal bands and returns the mean power in each, in dB.  This is what
    /// the figure harnesses print instead of a bitmap spectrogram.
    pub fn band_summary_db(&self, max_hz: f64, n_bands: usize) -> Vec<f64> {
        (0..n_bands)
            .map(|i| {
                let low = max_hz * i as f64 / n_bands as f64;
                let high = max_hz * (i + 1) as f64 / n_bands as f64;
                crate::db::power_to_db(self.mean_band_power(low, high).max(1e-24))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    #[test]
    fn validation() {
        assert!(spectrogram(&[], 48_000.0, &StftConfig::default()).is_err());
        assert!(spectrogram(&[1.0; 64], 0.0, &StftConfig::default()).is_err());
        let bad = StftConfig {
            frame_len: 4,
            hop: 0,
            window: WindowKind::Hann,
        };
        assert!(spectrogram(&[1.0; 64], 48_000.0, &bad).is_err());
        assert!(StftConfig::from_durations(0.0001, 0.0, 8_000.0).is_err());
    }

    #[test]
    fn frame_count_matches_hop() {
        let fs = 8_000.0;
        let x = vec![0.1; 8_000];
        let cfg = StftConfig {
            frame_len: 256,
            hop: 128,
            window: WindowKind::Hann,
        };
        let sg = spectrogram(&x, fs, &cfg).unwrap();
        // Roughly len / hop frames.
        assert!(
            sg.num_frames() >= 60 && sg.num_frames() <= 63,
            "{}",
            sg.num_frames()
        );
        assert_eq!(sg.num_bins(), 129);
        assert_eq!(sg.times_s.len(), sg.num_frames());
    }

    #[test]
    fn tone_energy_lands_in_correct_band() {
        let fs = 48_000.0;
        let sig = Signal::tone(5_000.0, 1.0, 0.5, fs).unwrap();
        let sg = spectrogram(sig.samples(), fs, &StftConfig::default()).unwrap();
        let in_band = sg.mean_band_power(4_500.0, 5_500.0);
        let out_band = sg.mean_band_power(10_000.0, 15_000.0);
        assert!(in_band / out_band.max(1e-20) > 1e4);
        let peaks = sg.peak_frequency_track();
        for p in &peaks[1..peaks.len().saturating_sub(1)] {
            assert!((p - 5_000.0).abs() < 100.0, "peak {p}");
        }
    }

    #[test]
    fn chirp_peak_track_moves_upwards() {
        let fs = 48_000.0;
        let n = 48_000;
        // Linear chirp 1 kHz -> 10 kHz.
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let f0 = 1_000.0;
                let k = 9_000.0; // Hz per second
                (2.0 * std::f64::consts::PI * (f0 * t + 0.5 * k * t * t)).sin()
            })
            .collect();
        let sg = spectrogram(&x, fs, &StftConfig::default()).unwrap();
        let track = sg.peak_frequency_track();
        let early = track[2];
        let late = track[track.len() - 3];
        assert!(late > early + 5_000.0, "early {early} late {late}");
    }

    #[test]
    fn short_signal_still_produces_one_frame() {
        let fs = 8_000.0;
        let x = vec![0.5; 100];
        let sg = spectrogram(&x, fs, &StftConfig::default()).unwrap();
        assert_eq!(sg.num_frames(), 1);
    }

    #[test]
    fn band_summary_has_requested_length_and_orders_energy() {
        let fs = 48_000.0;
        let sig = Signal::tone(2_000.0, 1.0, 0.5, fs).unwrap();
        let sg = spectrogram(sig.samples(), fs, &StftConfig::default()).unwrap();
        let summary = sg.band_summary_db(24_000.0, 12);
        assert_eq!(summary.len(), 12);
        // The band containing 2 kHz (band 1: 2k-4k) should be the maximum.
        let max_idx = summary
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(max_idx <= 1);
    }

    #[test]
    fn frame_energies_follow_amplitude_envelope() {
        let fs = 8_000.0;
        let mut x = Signal::tone(1_000.0, 0.1, 0.25, fs).unwrap();
        let loud = Signal::tone(1_000.0, 1.0, 0.25, fs).unwrap();
        x.append(&loud).unwrap();
        let sg = spectrogram(x.samples(), fs, &StftConfig::default()).unwrap();
        let energies = sg.frame_energies();
        let first = energies[1];
        let last = energies[energies.len() - 2];
        assert!(last > first * 10.0);
    }
}
