//! Amplitude modulation and demodulation.
//!
//! The attack shifts a voice baseband up around an ultrasonic carrier with
//! AM; the victim microphone's second-order non-linearity then acts as a
//! square-law demodulator.  Both directions are modelled here, together with
//! a coherent (product) demodulator used for analysis.

use crate::error::{DspError, Result};
use crate::filter::biquad::BiquadCascade;
use crate::signal::Signal;

/// Parameters of an AM modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmConfig {
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// Modulation depth in `[0, 1]` for full-carrier AM.
    pub modulation_depth: f64,
    /// Initial carrier phase in radians.
    pub carrier_phase_rad: f64,
}

impl AmConfig {
    /// Creates a configuration with zero initial phase.
    pub fn new(carrier_hz: f64, modulation_depth: f64) -> Self {
        AmConfig {
            carrier_hz,
            modulation_depth,
            carrier_phase_rad: 0.0,
        }
    }
}

fn validate_carrier(carrier_hz: f64, sample_rate_hz: f64) -> Result<()> {
    if carrier_hz <= 0.0 || carrier_hz >= sample_rate_hz / 2.0 {
        return Err(DspError::InvalidFrequency {
            frequency_hz: carrier_hz,
            nyquist_hz: sample_rate_hz / 2.0,
        });
    }
    Ok(())
}

/// Full-carrier amplitude modulation:
/// `y(t) = (1 + depth * m(t)) * cos(2 pi f_c t)`.
///
/// The baseband `m` is assumed normalised to peak 1; the output is
/// normalised to peak 1 as well so that downstream power accounting is
/// explicit.
pub fn am_modulate(baseband: &Signal, config: &AmConfig) -> Result<Signal> {
    if baseband.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "am_modulate",
        });
    }
    let fs = baseband.sample_rate_hz();
    validate_carrier(config.carrier_hz, fs)?;
    if !(0.0..=1.0).contains(&config.modulation_depth) {
        return Err(DspError::invalid_parameter(
            "modulation_depth",
            "must be in [0, 1]",
        ));
    }
    let w = 2.0 * std::f64::consts::PI * config.carrier_hz / fs;
    let peak = baseband.peak().max(1e-12);
    let samples: Vec<f64> = baseband
        .samples()
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let carrier = (w * i as f64 + config.carrier_phase_rad).cos();
            (1.0 + config.modulation_depth * m / peak) * carrier
        })
        .collect();
    let mut out = Signal::new(samples, fs)?;
    out.normalize_peak(1.0);
    Ok(out)
}

/// Double-sideband suppressed-carrier modulation: `y(t) = m(t) cos(2 pi f_c t)`.
pub fn dsb_sc_modulate(baseband: &Signal, carrier_hz: f64) -> Result<Signal> {
    if baseband.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "dsb_sc_modulate",
        });
    }
    let fs = baseband.sample_rate_hz();
    validate_carrier(carrier_hz, fs)?;
    let w = 2.0 * std::f64::consts::PI * carrier_hz / fs;
    let samples: Vec<f64> = baseband
        .samples()
        .iter()
        .enumerate()
        .map(|(i, &m)| m * (w * i as f64).cos())
        .collect();
    Signal::new(samples, fs)
}

/// Coherent (product) demodulation of an AM or DSB-SC signal: multiply by a
/// locally generated carrier and low-pass filter at `baseband_cutoff_hz`.
pub fn coherent_demodulate(
    modulated: &Signal,
    carrier_hz: f64,
    baseband_cutoff_hz: f64,
) -> Result<Signal> {
    if modulated.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "coherent_demodulate",
        });
    }
    let fs = modulated.sample_rate_hz();
    validate_carrier(carrier_hz, fs)?;
    let w = 2.0 * std::f64::consts::PI * carrier_hz / fs;
    let mixed: Vec<f64> = modulated
        .samples()
        .iter()
        .enumerate()
        .map(|(i, &x)| 2.0 * x * (w * i as f64).cos())
        .collect();
    let lpf = BiquadCascade::butterworth_low_pass(baseband_cutoff_hz, 6, fs)?;
    Signal::new(lpf.filtfilt(&mixed), fs)
}

/// Square-law demodulation: the signal is squared (the dominant term of a
/// second-order non-linearity) and low-pass filtered.  This is exactly the
/// mechanism by which a victim microphone recovers the attacker's baseband,
/// and it is also the source of the defense's tell-tale `m(t)²` shadow.
pub fn square_law_demodulate(modulated: &Signal, baseband_cutoff_hz: f64) -> Result<Signal> {
    if modulated.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "square_law_demodulate",
        });
    }
    let fs = modulated.sample_rate_hz();
    if baseband_cutoff_hz <= 0.0 || baseband_cutoff_hz >= fs / 2.0 {
        return Err(DspError::InvalidFrequency {
            frequency_hz: baseband_cutoff_hz,
            nyquist_hz: fs / 2.0,
        });
    }
    let squared: Vec<f64> = modulated.samples().iter().map(|x| x * x).collect();
    let lpf = BiquadCascade::butterworth_low_pass(baseband_cutoff_hz, 6, fs)?;
    let mut out = Signal::new(lpf.filtfilt(&squared), fs)?;
    out.remove_dc();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::pearson_correlation;
    use crate::resample::downsample;
    use crate::spectrum::band_power;

    fn baseband_tone(freq: f64, fs: f64, dur: f64) -> Signal {
        Signal::tone(freq, 1.0, dur, fs).unwrap()
    }

    #[test]
    fn validation() {
        let fs = 192_000.0;
        let m = baseband_tone(1_000.0, fs, 0.1);
        assert!(am_modulate(&m, &AmConfig::new(0.0, 0.5)).is_err());
        assert!(am_modulate(&m, &AmConfig::new(100_000.0, 0.5)).is_err());
        assert!(am_modulate(&m, &AmConfig::new(40_000.0, 1.5)).is_err());
        assert!(dsb_sc_modulate(&m, 0.0).is_err());
        assert!(coherent_demodulate(&m, 0.0, 8_000.0).is_err());
        assert!(square_law_demodulate(&m, 0.0).is_err());
        let empty = Signal::new(vec![], fs).unwrap();
        assert!(am_modulate(&empty, &AmConfig::new(40_000.0, 0.5)).is_err());
    }

    #[test]
    fn am_spectrum_sits_around_carrier() {
        let fs = 192_000.0;
        let m = baseband_tone(2_000.0, fs, 0.2);
        let y = am_modulate(&m, &AmConfig::new(40_000.0, 0.8)).unwrap();
        let near_carrier = band_power(y.samples(), fs, 36_000.0, 44_000.0).unwrap();
        let audible = band_power(y.samples(), fs, 100.0, 20_000.0).unwrap();
        assert!(
            near_carrier / audible > 1e4,
            "ratio {}",
            near_carrier / audible
        );
        assert!((y.peak() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dsb_sc_has_no_carrier_line() {
        let fs = 192_000.0;
        let m = baseband_tone(2_000.0, fs, 0.2);
        let y = dsb_sc_modulate(&m, 40_000.0).unwrap();
        // Carrier bin (40 kHz +- 200 Hz) should hold far less power than the
        // sidebands at 38/42 kHz.
        let carrier = band_power(y.samples(), fs, 39_800.0, 40_200.0).unwrap();
        let sideband = band_power(y.samples(), fs, 41_500.0, 42_500.0).unwrap();
        assert!(sideband / carrier.max(1e-20) > 10.0);
    }

    #[test]
    fn coherent_demodulation_recovers_baseband() {
        let fs = 192_000.0;
        let m = baseband_tone(1_500.0, fs, 0.2);
        let y = dsb_sc_modulate(&m, 40_000.0).unwrap();
        let d = coherent_demodulate(&y, 40_000.0, 8_000.0).unwrap();
        // Compare against the original baseband (steady state).
        let a = m.slice_seconds(0.05, 0.15);
        let b = d.slice_seconds(0.05, 0.15);
        let corr = pearson_correlation(a.samples(), b.samples()).unwrap();
        assert!(corr > 0.99, "correlation {corr}");
    }

    #[test]
    fn square_law_demodulation_recovers_am_baseband() {
        let fs = 192_000.0;
        let m = baseband_tone(1_000.0, fs, 0.2);
        let y = am_modulate(&m, &AmConfig::new(40_000.0, 0.8)).unwrap();
        let d = square_law_demodulate(&y, 8_000.0).unwrap();
        // The demodulated signal should contain a strong 1 kHz component.
        let p_tone = band_power(d.samples(), fs, 800.0, 1_200.0).unwrap();
        let p_rest = band_power(d.samples(), fs, 3_000.0, 8_000.0).unwrap();
        assert!(
            p_tone / p_rest.max(1e-20) > 10.0,
            "ratio {}",
            p_tone / p_rest
        );
    }

    #[test]
    fn square_law_demodulation_of_two_tones_creates_difference_frequency() {
        // The classic intermodulation example from the paper: 25 kHz + 30 kHz
        // in, 5 kHz out after the square law and LPF.
        let fs = 192_000.0;
        let mut x = Signal::tone(25_000.0, 0.5, 0.2, fs).unwrap();
        x.mix(&Signal::tone(30_000.0, 0.5, 0.2, fs).unwrap())
            .unwrap();
        let d = square_law_demodulate(&x, 10_000.0).unwrap();
        let p_diff = band_power(d.samples(), fs, 4_800.0, 5_200.0).unwrap();
        let p_rest = band_power(d.samples(), fs, 1_000.0, 4_000.0).unwrap();
        assert!(p_diff / p_rest.max(1e-20) > 50.0);
    }

    #[test]
    fn demodulated_baseband_survives_downsampling_to_audio_rate() {
        let fs = 192_000.0;
        let m = baseband_tone(2_000.0, fs, 0.2);
        let y = am_modulate(&m, &AmConfig::new(40_000.0, 0.8)).unwrap();
        let d = square_law_demodulate(&y, 8_000.0).unwrap();
        let audio = downsample(&d, 4).unwrap(); // 48 kHz
        let p_tone = band_power(audio.samples(), 48_000.0, 1_800.0, 2_200.0).unwrap();
        let p_total = band_power(audio.samples(), 48_000.0, 50.0, 20_000.0).unwrap();
        assert!(p_tone / p_total > 0.5, "tone fraction {}", p_tone / p_total);
    }
}
