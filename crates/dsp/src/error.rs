//! Error type shared by all DSP routines.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DspError>;

/// Errors produced by DSP primitives.
///
/// The crate prefers returning errors over panicking for conditions that a
/// caller can plausibly trigger with run-time data (empty inputs, mismatched
/// sample rates, invalid cutoff frequencies).  Programming errors (e.g. a
/// zero-length FFT requested internally) still panic.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// The input slice was empty but the operation requires samples.
    EmptyInput {
        /// Operation that rejected the input.
        operation: &'static str,
    },
    /// A frequency parameter was outside `(0, nyquist)`.
    InvalidFrequency {
        /// Offending frequency in Hz.
        frequency_hz: f64,
        /// Nyquist frequency implied by the sample rate.
        nyquist_hz: f64,
    },
    /// A sample rate was not strictly positive.
    InvalidSampleRate {
        /// Offending rate in Hz.
        sample_rate_hz: f64,
    },
    /// Two signals that must share a sample rate did not.
    SampleRateMismatch {
        /// First rate in Hz.
        left_hz: f64,
        /// Second rate in Hz.
        right_hz: f64,
    },
    /// A length or factor parameter was invalid (zero, negative, too large).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput { operation } => {
                write!(f, "{operation}: input signal is empty")
            }
            DspError::InvalidFrequency {
                frequency_hz,
                nyquist_hz,
            } => write!(
                f,
                "frequency {frequency_hz} Hz is outside (0, {nyquist_hz}) Hz"
            ),
            DspError::InvalidSampleRate { sample_rate_hz } => {
                write!(f, "sample rate {sample_rate_hz} Hz must be positive")
            }
            DspError::SampleRateMismatch { left_hz, right_hz } => {
                write!(f, "sample rates differ: {left_hz} Hz vs {right_hz} Hz")
            }
            DspError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for DspError {}

impl DspError {
    /// Helper to build an [`DspError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        DspError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DspError::EmptyInput { operation: "fft" };
        assert!(e.to_string().contains("fft"));
        let e = DspError::InvalidFrequency {
            frequency_hz: 30_000.0,
            nyquist_hz: 24_000.0,
        };
        assert!(e.to_string().contains("30000"));
        let e = DspError::InvalidSampleRate {
            sample_rate_hz: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        let e = DspError::SampleRateMismatch {
            left_hz: 48_000.0,
            right_hz: 192_000.0,
        };
        assert!(e.to_string().contains("48000"));
        let e = DspError::invalid_parameter("order", "must be even");
        assert!(e.to_string().contains("order"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            DspError::EmptyInput { operation: "x" },
            DspError::EmptyInput { operation: "x" }
        );
        assert_ne!(
            DspError::EmptyInput { operation: "x" },
            DspError::EmptyInput { operation: "y" }
        );
    }
}
