//! The [`Signal`] container: samples plus a sample rate.
//!
//! `Signal` is the common currency passed between the DSP, acoustics,
//! speech, attack and defense crates.  It deliberately stays thin: a
//! `Vec<f64>` of samples, a sample rate, and the handful of operations that
//! every layer needs (mixing, scaling, normalisation, RMS/peak measurement,
//! slicing by time).

use crate::db::amplitude_to_db;
use crate::error::{DspError, Result};

/// A sampled real-valued signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    samples: Vec<f64>,
    sample_rate_hz: f64,
}

impl Signal {
    /// Creates a signal from raw samples.
    ///
    /// Returns an error if the sample rate is not strictly positive.
    pub fn new(samples: Vec<f64>, sample_rate_hz: f64) -> Result<Self> {
        if !(sample_rate_hz > 0.0) || !sample_rate_hz.is_finite() {
            return Err(DspError::InvalidSampleRate { sample_rate_hz });
        }
        Ok(Signal {
            samples,
            sample_rate_hz,
        })
    }

    /// Creates a silent signal of the given duration.
    pub fn silence(duration_s: f64, sample_rate_hz: f64) -> Result<Self> {
        let n = (duration_s * sample_rate_hz).round().max(0.0) as usize;
        Signal::new(vec![0.0; n], sample_rate_hz)
    }

    /// Creates a sine tone.
    pub fn tone(
        frequency_hz: f64,
        amplitude: f64,
        duration_s: f64,
        sample_rate_hz: f64,
    ) -> Result<Self> {
        if !(sample_rate_hz > 0.0) {
            return Err(DspError::InvalidSampleRate { sample_rate_hz });
        }
        if frequency_hz <= 0.0 || frequency_hz >= sample_rate_hz / 2.0 {
            return Err(DspError::InvalidFrequency {
                frequency_hz,
                nyquist_hz: sample_rate_hz / 2.0,
            });
        }
        let n = (duration_s * sample_rate_hz).round().max(0.0) as usize;
        let w = 2.0 * std::f64::consts::PI * frequency_hz / sample_rate_hz;
        let samples = (0..n).map(|i| amplitude * (w * i as f64).sin()).collect();
        Signal::new(samples, sample_rate_hz)
    }

    /// Immutable view of the samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable view of the samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the signal, returning the sample vector.
    #[inline]
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Sample rate in Hz.
    #[inline]
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the signal holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate_hz
    }

    /// Nyquist frequency in Hz.
    #[inline]
    pub fn nyquist_hz(&self) -> f64 {
        self.sample_rate_hz / 2.0
    }

    /// Root-mean-square amplitude (0 for an empty signal).
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = self.samples.iter().map(|x| x * x).sum();
        (sum_sq / self.samples.len() as f64).sqrt()
    }

    /// Peak absolute amplitude (0 for an empty signal).
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |acc, &x| acc.max(x.abs()))
    }

    /// RMS level in dB relative to full scale (amplitude 1.0).
    pub fn rms_dbfs(&self) -> f64 {
        amplitude_to_db(self.rms())
    }

    /// Crest factor (peak / RMS); returns 0 when the signal is silent.
    pub fn crest_factor(&self) -> f64 {
        let rms = self.rms();
        if rms == 0.0 {
            0.0
        } else {
            self.peak() / rms
        }
    }

    /// Total energy (sum of squared samples).
    pub fn energy(&self) -> f64 {
        self.samples.iter().map(|x| x * x).sum()
    }

    /// Multiplies every sample by `factor` in place.
    pub fn scale(&mut self, factor: f64) {
        for x in &mut self.samples {
            *x *= factor;
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Signal {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Normalises the peak amplitude to `target_peak` (no-op on silence).
    pub fn normalize_peak(&mut self, target_peak: f64) {
        let peak = self.peak();
        if peak > 0.0 {
            self.scale(target_peak / peak);
        }
    }

    /// Normalises the RMS amplitude to `target_rms` (no-op on silence).
    pub fn normalize_rms(&mut self, target_rms: f64) {
        let rms = self.rms();
        if rms > 0.0 {
            self.scale(target_rms / rms);
        }
    }

    /// Adds another signal sample-wise (mixing).  The other signal may be
    /// shorter or longer; samples beyond either length are taken as zero and
    /// the result has the length of the longer one.
    pub fn mix(&mut self, other: &Signal) -> Result<()> {
        if (self.sample_rate_hz - other.sample_rate_hz).abs() > 1e-9 {
            return Err(DspError::SampleRateMismatch {
                left_hz: self.sample_rate_hz,
                right_hz: other.sample_rate_hz,
            });
        }
        if other.samples.len() > self.samples.len() {
            self.samples.resize(other.samples.len(), 0.0);
        }
        for (dst, src) in self.samples.iter_mut().zip(other.samples.iter()) {
            *dst += *src;
        }
        Ok(())
    }

    /// Returns the sample-wise sum of two signals (see [`Signal::mix`]).
    pub fn mixed(&self, other: &Signal) -> Result<Signal> {
        let mut out = self.clone();
        out.mix(other)?;
        Ok(out)
    }

    /// Applies an arbitrary per-sample map, returning a new signal with the
    /// same sample rate.  Used to model memoryless non-linearities.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Signal {
        Signal {
            samples: self.samples.iter().map(|&x| f(x)).collect(),
            sample_rate_hz: self.sample_rate_hz,
        }
    }

    /// Extracts the samples between `start_s` and `end_s` (clamped to the
    /// signal bounds) as a new signal.
    pub fn slice_seconds(&self, start_s: f64, end_s: f64) -> Signal {
        let start =
            ((start_s * self.sample_rate_hz).round().max(0.0) as usize).min(self.samples.len());
        let end = ((end_s * self.sample_rate_hz).round().max(0.0) as usize).min(self.samples.len());
        let (start, end) = if start <= end {
            (start, end)
        } else {
            (end, start)
        };
        Signal {
            samples: self.samples[start..end].to_vec(),
            sample_rate_hz: self.sample_rate_hz,
        }
    }

    /// Appends `other` after this signal (concatenation in time).
    pub fn append(&mut self, other: &Signal) -> Result<()> {
        if (self.sample_rate_hz - other.sample_rate_hz).abs() > 1e-9 {
            return Err(DspError::SampleRateMismatch {
                left_hz: self.sample_rate_hz,
                right_hz: other.sample_rate_hz,
            });
        }
        self.samples.extend_from_slice(&other.samples);
        Ok(())
    }

    /// Pads the signal with `duration_s` seconds of silence at the end.
    pub fn pad_end(&mut self, duration_s: f64) {
        let extra = (duration_s * self.sample_rate_hz).round().max(0.0) as usize;
        self.samples.extend(std::iter::repeat(0.0).take(extra));
    }

    /// Pads the signal with `duration_s` seconds of silence at the start.
    pub fn pad_start(&mut self, duration_s: f64) {
        let extra = (duration_s * self.sample_rate_hz).round().max(0.0) as usize;
        let mut padded = vec![0.0; extra];
        padded.extend_from_slice(&self.samples);
        self.samples = padded;
    }

    /// Truncates or zero-pads to exactly `n` samples.
    pub fn resize(&mut self, n: usize) {
        self.samples.resize(n, 0.0);
    }

    /// Clamps every sample to `[-limit, limit]`, modelling hard clipping.
    pub fn clip(&mut self, limit: f64) {
        for x in &mut self.samples {
            *x = x.clamp(-limit, limit);
        }
    }

    /// Removes the mean (DC component) in place.
    pub fn remove_dc(&mut self) {
        if self.samples.is_empty() {
            return;
        }
        let mean: f64 = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        for x in &mut self.samples {
            *x -= mean;
        }
    }

    /// Applies a linear fade-in and fade-out of the given duration, avoiding
    /// clicks when signals are concatenated or played.
    pub fn fade(&mut self, fade_s: f64) {
        let n = self.samples.len();
        let fade_n = ((fade_s * self.sample_rate_hz).round() as usize).min(n / 2);
        for i in 0..fade_n {
            let g = i as f64 / fade_n as f64;
            self.samples[i] *= g;
            self.samples[n - 1 - i] *= g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn construction_validates_sample_rate() {
        assert!(Signal::new(vec![0.0], 0.0).is_err());
        assert!(Signal::new(vec![0.0], -48_000.0).is_err());
        assert!(Signal::new(vec![0.0], f64::NAN).is_err());
        assert!(Signal::new(vec![0.0], 48_000.0).is_ok());
    }

    #[test]
    fn tone_has_expected_rms_and_duration() {
        let s = Signal::tone(1_000.0, 1.0, 1.0, 48_000.0).unwrap();
        assert_eq!(s.len(), 48_000);
        assert!(approx(s.duration_s(), 1.0, 1e-9));
        assert!(approx(s.rms(), 1.0 / 2f64.sqrt(), 1e-3));
        assert!(approx(s.peak(), 1.0, 1e-3));
        assert!(approx(s.crest_factor(), 2f64.sqrt(), 1e-2));
    }

    #[test]
    fn tone_rejects_out_of_band_frequencies() {
        assert!(Signal::tone(30_000.0, 1.0, 0.1, 48_000.0).is_err());
        assert!(Signal::tone(0.0, 1.0, 0.1, 48_000.0).is_err());
        assert!(Signal::tone(-10.0, 1.0, 0.1, 48_000.0).is_err());
    }

    #[test]
    fn silence_is_silent() {
        let s = Signal::silence(0.5, 16_000.0).unwrap();
        assert_eq!(s.len(), 8_000);
        assert_eq!(s.rms(), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.crest_factor(), 0.0);
    }

    #[test]
    fn scaling_and_normalisation() {
        let mut s = Signal::tone(440.0, 0.25, 0.1, 8_000.0).unwrap();
        s.normalize_peak(1.0);
        assert!(approx(s.peak(), 1.0, 1e-6));
        s.normalize_rms(0.1);
        assert!(approx(s.rms(), 0.1, 1e-9));
        let doubled = s.scaled(2.0);
        assert!(approx(doubled.rms(), 0.2, 1e-9));
    }

    #[test]
    fn mixing_extends_to_longer_signal() {
        let mut a = Signal::new(vec![1.0, 1.0], 8_000.0).unwrap();
        let b = Signal::new(vec![0.5, 0.5, 0.5, 0.5], 8_000.0).unwrap();
        a.mix(&b).unwrap();
        assert_eq!(a.samples(), &[1.5, 1.5, 0.5, 0.5]);
    }

    #[test]
    fn mixing_rejects_rate_mismatch() {
        let mut a = Signal::new(vec![1.0], 8_000.0).unwrap();
        let b = Signal::new(vec![1.0], 16_000.0).unwrap();
        assert!(a.mix(&b).is_err());
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn slicing_by_time() {
        let s = Signal::new((0..100).map(|i| i as f64).collect(), 100.0).unwrap();
        let mid = s.slice_seconds(0.25, 0.75);
        assert_eq!(mid.len(), 50);
        assert_eq!(mid.samples()[0], 25.0);
        // Out-of-range and inverted bounds are clamped / swapped.
        assert_eq!(s.slice_seconds(0.9, 2.0).len(), 10);
        assert_eq!(s.slice_seconds(0.75, 0.25).len(), 50);
    }

    #[test]
    fn padding_and_resize() {
        let mut s = Signal::new(vec![1.0; 10], 10.0).unwrap();
        s.pad_end(0.5);
        assert_eq!(s.len(), 15);
        s.pad_start(0.5);
        assert_eq!(s.len(), 20);
        assert_eq!(s.samples()[0], 0.0);
        s.resize(5);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn dc_removal_and_clipping() {
        let mut s = Signal::new(vec![2.0, 3.0, 4.0], 10.0).unwrap();
        s.remove_dc();
        assert!(approx(s.samples().iter().sum::<f64>(), 0.0, 1e-12));
        let mut c = Signal::new(vec![-2.0, 0.5, 2.0], 10.0).unwrap();
        c.clip(1.0);
        assert_eq!(c.samples(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn fade_tapers_ends() {
        let mut s = Signal::new(vec![1.0; 100], 100.0).unwrap();
        s.fade(0.1);
        assert!(s.samples()[0].abs() < 1e-12);
        assert!((s.samples()[50] - 1.0).abs() < 1e-12);
        assert!(s.samples()[99] < 0.2);
    }

    #[test]
    fn map_applies_nonlinearity() {
        let s = Signal::new(vec![1.0, 2.0, -3.0], 10.0).unwrap();
        let sq = s.map(|x| x * x);
        assert_eq!(sq.samples(), &[1.0, 4.0, 9.0]);
        assert_eq!(sq.sample_rate_hz(), 10.0);
    }

    #[test]
    fn energy_matches_definition() {
        let s = Signal::new(vec![1.0, -2.0, 2.0], 10.0).unwrap();
        assert!(approx(s.energy(), 9.0, 1e-12));
    }
}
