//! Correlation utilities.
//!
//! The defense's strongest feature is the correlation between the recorded
//! low-frequency "shadow" and the squared envelope of the voice band, and
//! the recogniser aligns templates with cross-correlation, so these helpers
//! are shared infrastructure.

use crate::error::{DspError, Result};

/// Pearson correlation coefficient between two equal-length slices (the
/// shorter length is used if they differ).  Returns 0 when either input has
/// zero variance.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> Result<f64> {
    let n = a.len().min(b.len());
    if n == 0 {
        return Err(DspError::EmptyInput {
            operation: "pearson_correlation",
        });
    }
    let a = &a[..n];
    let b = &b[..n];
    let mean_a = a.iter().sum::<f64>() / n as f64;
    let mean_b = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..n {
        let da = a[i] - mean_a;
        let db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (var_a.sqrt() * var_b.sqrt()))
}

/// Full cross-correlation of `a` and `b` for lags in `[-max_lag, max_lag]`.
/// Returns `(lags, values)` where `values[i]` is the un-normalised
/// correlation at `lags[i]` (positive lag means `b` is delayed relative to
/// `a`).
pub fn cross_correlation(a: &[f64], b: &[f64], max_lag: usize) -> Result<(Vec<isize>, Vec<f64>)> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "cross_correlation",
        });
    }
    let max_lag = max_lag.min(a.len().max(b.len()) - 1) as isize;
    let mut lags = Vec::new();
    let mut values = Vec::new();
    for lag in -max_lag..=max_lag {
        let mut acc = 0.0;
        for (i, &x) in a.iter().enumerate() {
            let j = i as isize + lag;
            if j >= 0 && (j as usize) < b.len() {
                acc += x * b[j as usize];
            }
        }
        lags.push(lag);
        values.push(acc);
    }
    Ok((lags, values))
}

/// Lag (in samples) at which the normalised cross-correlation of `a` and `b`
/// peaks, together with the peak's normalised value in `[-1, 1]`.
pub fn best_alignment(a: &[f64], b: &[f64], max_lag: usize) -> Result<(isize, f64)> {
    let (lags, values) = cross_correlation(a, b, max_lag)?;
    let energy_a: f64 = a.iter().map(|x| x * x).sum();
    let energy_b: f64 = b.iter().map(|x| x * x).sum();
    let norm = (energy_a * energy_b).sqrt().max(1e-300);
    let (idx, &peak) = values
        .iter()
        .enumerate()
        .max_by(|x, y| {
            x.1.abs()
                .partial_cmp(&y.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("cross_correlation returns at least one lag");
    Ok((lags[idx], peak / norm))
}

/// Autocorrelation of `a` for non-negative lags up to `max_lag`, normalised
/// so that lag 0 equals 1 (unless the signal is silent).
pub fn autocorrelation(a: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if a.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "autocorrelation",
        });
    }
    let max_lag = max_lag.min(a.len() - 1);
    let energy: f64 = a.iter().map(|x| x * x).sum();
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        for i in 0..a.len() - lag {
            acc += a[i] * a[i + lag];
        }
        out.push(if energy > 0.0 { acc / energy } else { 0.0 });
    }
    Ok(out)
}

/// Estimates the fundamental period of a quasi-periodic signal by finding
/// the first strong autocorrelation peak between `min_lag` and `max_lag`.
/// Returns `None` when no peak exceeds `threshold`.
pub fn fundamental_period(
    a: &[f64],
    min_lag: usize,
    max_lag: usize,
    threshold: f64,
) -> Result<Option<usize>> {
    if min_lag == 0 || min_lag >= max_lag {
        return Err(DspError::invalid_parameter(
            "lag range",
            "need 0 < min_lag < max_lag",
        ));
    }
    let ac = autocorrelation(a, max_lag)?;
    let mut best: Option<(usize, f64)> = None;
    for (lag, &v) in ac.iter().enumerate().skip(min_lag) {
        if v >= threshold {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((lag, v)),
            }
        }
    }
    Ok(best.map(|(lag, _)| lag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(pearson_correlation(&[], &[1.0]).is_err());
        assert!(cross_correlation(&[], &[1.0], 4).is_err());
        assert!(autocorrelation(&[], 4).is_err());
        assert!(fundamental_period(&[1.0; 32], 0, 10, 0.5).is_err());
        assert!(fundamental_period(&[1.0; 32], 10, 10, 0.5).is_err());
    }

    #[test]
    fn pearson_of_identical_signals_is_one() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!((pearson_correlation(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson_correlation(&a, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_independent_signals_is_small() {
        let a: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i as f64 * 1.71 + 0.4).sin()).collect();
        assert!(pearson_correlation(&a, &b).unwrap().abs() < 0.05);
    }

    #[test]
    fn pearson_of_constant_signal_is_zero() {
        let a = vec![1.0; 50];
        let b: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(pearson_correlation(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn pearson_is_scale_invariant() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 2.0).collect();
        assert!((pearson_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_alignment_finds_known_delay() {
        let n = 1_000;
        let a: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.05).sin() * (-(i as f64 - 500.0).powi(2) / 20_000.0).exp())
            .collect();
        let delay = 37usize;
        let mut b = vec![0.0; n];
        b[delay..n].copy_from_slice(&a[..n - delay]);
        let (lag, peak) = best_alignment(&a, &b, 100).unwrap();
        assert_eq!(lag, delay as isize);
        assert!(peak > 0.8);
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        let period = 50usize;
        let a: Vec<f64> = (0..1_000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let ac = autocorrelation(&a, 200).unwrap();
        assert!((ac[0] - 1.0).abs() < 1e-12);
        assert!(ac[period] > 0.9);
        assert!(ac[period / 2] < -0.8);
    }

    #[test]
    fn fundamental_period_estimation() {
        let period = 80usize;
        // A pulse train with the given period.
        let mut a = vec![0.0; 2_000];
        for i in (0..2_000).step_by(period) {
            a[i] = 1.0;
        }
        let est = fundamental_period(&a, 20, 400, 0.5).unwrap();
        assert_eq!(est, Some(period));
        // A single impulse has no periodicity: autocorrelation is zero for
        // every non-zero lag, so no confident period is found.
        let mut b = vec![0.0; 2_000];
        b[0] = 1.0;
        let est_b = fundamental_period(&b, 20, 400, 0.9).unwrap();
        assert!(est_b.is_none());
    }

    #[test]
    fn cross_correlation_lag_range() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, 3.0];
        let (lags, values) = cross_correlation(&a, &b, 10).unwrap();
        assert_eq!(lags.len(), values.len());
        assert_eq!(lags[0], -2);
        assert_eq!(*lags.last().unwrap(), 2);
        // Zero lag holds the energy.
        let zero_idx = lags.iter().position(|&l| l == 0).unwrap();
        assert!((values[zero_idx] - 14.0).abs() < 1e-12);
    }
}
