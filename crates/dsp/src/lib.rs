//! # ivc-dsp — signal-processing substrate
//!
//! This crate provides every digital-signal-processing primitive needed by
//! the inaudible-voice-commands reproduction, implemented from scratch on
//! `f64` samples so that the rest of the workspace has no third-party DSP
//! dependencies:
//!
//! * [`Complex`] arithmetic and a radix-2 [`fft`] (complex and real
//!   transforms) used by spectra, fast convolution and the analytic signal.
//! * [`window`] functions (Hann, Hamming, Blackman, …).
//! * FIR design by the windowed-sinc method and zero-phase filtering
//!   ([`filter::fir`]), and Butterworth biquad cascades ([`filter::biquad`]).
//! * Integer and rational [`resample`]-ing, needed to move voice recordings
//!   (48 kHz) up to ultrasonic playback rates (192 kHz / 384 kHz) and back.
//! * Short-time analysis: [`stft`] / spectrograms, [`envelope`] extraction
//!   via the analytic signal, and [`spectrum`] estimation (Welch PSD, band
//!   power, spectral tilt).
//! * Amplitude [`modulation`] and the square-law demodulation that models
//!   what a non-linear microphone does to an AM ultrasound signal.
//! * [`correlation`] utilities and the [`goertzel`] single-bin DFT.
//! * [`sparse`] delay/gain tap lists and their convolution against a
//!   [`Signal`] — the time-domain form of a room's early reflections.
//!
//! All functions operate either on plain `&[f64]` slices or on the
//! [`Signal`] container, which couples samples with a sample rate and is the
//! common currency of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod correlation;
pub mod db;
pub mod envelope;
pub mod error;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod modulation;
pub mod resample;
pub mod signal;
pub mod sparse;
pub mod spectrum;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use error::{DspError, Result};
pub use signal::Signal;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::complex::Complex;
    pub use crate::db::{amplitude_to_db, db_to_amplitude, db_to_power, power_to_db};
    pub use crate::error::{DspError, Result};
    pub use crate::filter::biquad::{Biquad, BiquadCascade, SosFilter};
    pub use crate::filter::fir::FirFilter;
    pub use crate::signal::Signal;
    pub use crate::sparse::{convolve_sparse, convolve_sparse_into, SparseTap, SparseTaps};
    pub use crate::window::WindowKind;
}
