//! Property-based tests for the DSP substrate.
//!
//! These check structural invariants that must hold for *any* input, not
//! just the hand-picked cases in the unit tests: FFT round-trips and
//! Parseval's theorem, window bounds, filter stability, resampling length
//! arithmetic, envelope non-negativity and correlation bounds.

use ivc_dsp::complex::Complex;
use ivc_dsp::correlation::{autocorrelation, pearson_correlation};
use ivc_dsp::envelope::hilbert_envelope;
use ivc_dsp::fft::{fft, fft_real_n, ifft, next_power_of_two};
use ivc_dsp::filter::biquad::BiquadCascade;
use ivc_dsp::filter::fir::FirFilter;
use ivc_dsp::resample::{downsample, upsample};
use ivc_dsp::signal::Signal;
use ivc_dsp::window::WindowKind;
use proptest::prelude::*;

fn sample_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, 4..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_ifft_roundtrip_recovers_input(samples in sample_vec(256)) {
        let n = next_power_of_two(samples.len());
        let mut input: Vec<Complex> = samples.iter().map(|&x| Complex::from_real(x)).collect();
        input.resize(n, Complex::ZERO);
        let back = ifft(&fft(&input).unwrap()).unwrap();
        for (a, b) in input.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds_for_real_signals(samples in sample_vec(256)) {
        let n = next_power_of_two(samples.len());
        let spec = fft_real_n(&samples, n).unwrap();
        let time_energy: f64 = samples.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    #[test]
    fn windows_stay_within_unit_interval(n in 2usize..512, kind_idx in 0usize..5) {
        let kind = [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Bartlett,
        ][kind_idx];
        for v in kind.symmetric(n) {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn fir_low_pass_output_is_bounded_for_bounded_input(
        samples in sample_vec(512),
        cutoff_khz in 1.0f64..10.0,
    ) {
        let fs = 48_000.0;
        let f = FirFilter::low_pass(cutoff_khz * 1_000.0, fs, 101, WindowKind::Hamming).unwrap();
        let out = f.filter(&samples).unwrap();
        prop_assert_eq!(out.len(), samples.len());
        // A windowed-sinc low-pass has modest overshoot; 2x input bound is safe.
        for y in out {
            prop_assert!(y.abs() <= 2.0);
            prop_assert!(y.is_finite());
        }
    }

    #[test]
    fn biquad_cascade_is_stable(samples in sample_vec(512), cutoff_khz in 0.5f64..8.0) {
        let fs = 48_000.0;
        let c = BiquadCascade::butterworth_low_pass(cutoff_khz * 1_000.0, 4, fs).unwrap();
        let out = c.filter(&samples);
        for y in out {
            prop_assert!(y.is_finite());
            prop_assert!(y.abs() < 100.0);
        }
    }

    #[test]
    fn upsample_then_downsample_preserves_length(samples in sample_vec(256), factor in 2usize..5) {
        let s = Signal::new(samples, 48_000.0).unwrap();
        let up = upsample(&s, factor).unwrap();
        prop_assert_eq!(up.len(), s.len() * factor);
        let down = downsample(&up, factor).unwrap();
        prop_assert_eq!(down.len(), s.len());
        prop_assert!((down.sample_rate_hz() - 48_000.0).abs() < 1e-9);
    }

    #[test]
    fn hilbert_envelope_is_nonnegative_and_bounds_signal(samples in sample_vec(256)) {
        let env = hilbert_envelope(&samples).unwrap();
        prop_assert_eq!(env.len(), samples.len());
        for e in &env {
            prop_assert!(*e >= 0.0);
            prop_assert!(e.is_finite());
        }
    }

    #[test]
    fn pearson_correlation_is_bounded(a in sample_vec(128), b in sample_vec(128)) {
        let r = pearson_correlation(&a, &b).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn autocorrelation_lag_zero_is_maximal(samples in sample_vec(128)) {
        let ac = autocorrelation(&samples, 32).unwrap();
        let energy: f64 = samples.iter().map(|x| x * x).sum();
        if energy > 1e-9 {
            prop_assert!((ac[0] - 1.0).abs() < 1e-9);
            for v in &ac {
                prop_assert!(v.abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn signal_normalisation_reaches_target(samples in sample_vec(256), target in 0.01f64..2.0) {
        let mut s = Signal::new(samples, 16_000.0).unwrap();
        if s.peak() > 0.0 {
            s.normalize_peak(target);
            prop_assert!((s.peak() - target).abs() < 1e-9);
        }
    }

    #[test]
    fn mixing_is_commutative(a in sample_vec(128), b in sample_vec(128)) {
        let sa = Signal::new(a, 8_000.0).unwrap();
        let sb = Signal::new(b, 8_000.0).unwrap();
        let ab = sa.mixed(&sb).unwrap();
        let ba = sb.mixed(&sa).unwrap();
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.samples().iter().zip(ba.samples().iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}
