//! Spectrum segmentation: the core trick of the long-range attack.
//!
//! The modulated attack signal has two parts: the carrier and the sidebands
//! (the voice spectrum shifted up around the carrier).  A non-linearity only
//! recreates the voice when it sees **both** at once, because the audible
//! product is `carrier × sideband`.  The segmentation therefore:
//!
//! 1. gives the carrier its own speaker (element 0), and
//! 2. splits the voice baseband into narrow contiguous slices, one per
//!    remaining speaker, each slice DSB-SC-modulated onto the same carrier.
//!
//! A single element's self-intermodulation can then only produce
//! `slice × slice` products, which live below the slice's own bandwidth
//! (tens to hundreds of hertz of unintelligible rumble), while the full
//! `carrier × slice` voice reconstruction happens only where all elements'
//! sound waves meet a shared non-linearity: inside the victim microphone.

use crate::error::{AttackError, Result};
use ivc_dsp::filter::fir::FirFilter;
use ivc_dsp::modulation::dsb_sc_modulate;
use ivc_dsp::signal::Signal;
use ivc_dsp::window::WindowKind;

/// One frequency slice of the baseband.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumSlice {
    /// Lower edge in Hz.
    pub low_hz: f64,
    /// Upper edge in Hz.
    pub high_hz: f64,
}

impl SpectrumSlice {
    /// Bandwidth of the slice in Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.high_hz - self.low_hz
    }
}

/// Number of taps of the per-slice band-pass FIR filters.
pub const SLICE_FILTER_TAPS: usize = 511;

/// The narrowest passband a `taps`-tap windowed-sinc filter at `fs` can
/// actually realise (its Hamming main-lobe width, `≈ 2·fs/taps`).  Slices
/// below this width still *work* — adjacent filters overlap and the slice
/// energy is radiated from neighbouring elements too — but the per-element
/// band isolation the segmentation promises degrades gracefully rather than
/// holding exactly.
///
/// This limit was audited while chasing the E-A2 61-element anomaly: at
/// 192 kHz, 60 slices of ~132 Hz sit far below the 511-tap limit of
/// ~750 Hz, yet the *radiated* sideband energy stays intact (the overlap
/// redistributes, not destroys, slice energy) — the anomaly's root cause
/// was the carrier power cap, fixed in
/// [`crate::multispeaker::MultiSpeakerAttack::build_balanced`].  The limit
/// is exposed (and flagged via [`SegmentedDrives::resolution_limited`]) so
/// that future sweeps can tell the two regimes apart.
pub fn minimum_resolvable_bandwidth_hz(sample_rate_hz: f64, taps: usize) -> f64 {
    2.0 * sample_rate_hz / taps.max(1) as f64
}

/// The full segmentation plan: which slice goes to which element.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentationPlan {
    /// Slices assigned to elements `1..=slices.len()`; element 0 carries the
    /// carrier alone.
    pub slices: Vec<SpectrumSlice>,
    /// Baseband bandwidth that was segmented, in Hz.
    pub baseband_bandwidth_hz: f64,
}

/// Splits `[low_hz, high_hz]` into `num_slices` contiguous slices.
pub fn plan_segmentation(low_hz: f64, high_hz: f64, num_slices: usize) -> Result<SegmentationPlan> {
    if num_slices == 0 {
        return Err(AttackError::invalid("num_slices", "must be at least 1"));
    }
    if !(low_hz >= 0.0) || high_hz <= low_hz {
        return Err(AttackError::invalid("band", "need 0 <= low_hz < high_hz"));
    }
    let width = (high_hz - low_hz) / num_slices as f64;
    let slices = (0..num_slices)
        .map(|i| SpectrumSlice {
            low_hz: low_hz + i as f64 * width,
            high_hz: low_hz + (i + 1) as f64 * width,
        })
        .collect();
    Ok(SegmentationPlan {
        slices,
        baseband_bandwidth_hz: high_hz - low_hz,
    })
}

/// The per-element drive signals produced by segmenting a baseband.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedDrives {
    /// Drive for element 0: the bare carrier.
    pub carrier_drive: Signal,
    /// Drives for elements `1..`: each slice modulated on the carrier.
    /// All sideband drives share one normalisation factor so that their sum
    /// reconstructs the baseband's spectral balance.
    pub sideband_drives: Vec<Signal>,
    /// The segmentation plan used.
    pub plan: SegmentationPlan,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
}

impl SegmentedDrives {
    /// Total number of element drives (carrier + sidebands).
    pub fn num_drives(&self) -> usize {
        1 + self.sideband_drives.len()
    }

    /// All drives in element order (carrier first).
    pub fn all_drives(&self) -> Vec<&Signal> {
        let mut v = Vec::with_capacity(self.num_drives());
        v.push(&self.carrier_drive);
        v.extend(self.sideband_drives.iter());
        v
    }

    /// `true` when the plan's slices are narrower than the slice filters
    /// can resolve (see [`minimum_resolvable_bandwidth_hz`]): per-element
    /// band isolation is then approximate, with adjacent elements sharing
    /// overlapping skirts.
    pub fn resolution_limited(&self) -> bool {
        let fs = self.carrier_drive.sample_rate_hz();
        let limit = minimum_resolvable_bandwidth_hz(fs, SLICE_FILTER_TAPS);
        self.sideband_drives.len() > 1
            && self
                .plan
                .slices
                .iter()
                .any(|slice| slice.bandwidth_hz() < limit)
    }
}

/// Builds the per-element drives for a prepared baseband.
///
/// `num_sideband_elements` is the number of elements available for sideband
/// slices (the carrier element is extra).  The baseband must already be at
/// the ultrasonic playback rate (see [`crate::baseband::prepare_baseband`]).
pub fn segment_baseband(
    baseband: &Signal,
    carrier_hz: f64,
    baseband_bandwidth_hz: f64,
    num_sideband_elements: usize,
) -> Result<SegmentedDrives> {
    if baseband.is_empty() {
        return Err(AttackError::invalid("baseband", "empty signal"));
    }
    if num_sideband_elements == 0 {
        return Err(AttackError::invalid(
            "num_sideband_elements",
            "must be at least 1",
        ));
    }
    let fs = baseband.sample_rate_hz();
    if carrier_hz <= 20_000.0 + baseband_bandwidth_hz
        || carrier_hz >= fs / 2.0 - baseband_bandwidth_hz
    {
        return Err(AttackError::invalid(
            "carrier_hz",
            "carrier must keep both sidebands ultrasonic and below Nyquist",
        ));
    }
    let plan = plan_segmentation(50.0, baseband_bandwidth_hz, num_sideband_elements)?;

    // Carrier drive: a unit-amplitude cosine at the carrier frequency.
    let n = baseband.len();
    let w = 2.0 * std::f64::consts::PI * carrier_hz / fs;
    let carrier_drive = Signal::new((0..n).map(|i| (w * i as f64).cos()).collect(), fs)?;

    // Slice the baseband and modulate each slice.
    let mut modulated: Vec<Signal> = Vec::with_capacity(num_sideband_elements);
    for slice in &plan.slices {
        let sliced = if num_sideband_elements == 1 {
            // One element: keep the whole band (low-pass only).
            let lpf = FirFilter::low_pass(slice.high_hz, fs, 255, WindowKind::Hamming)?;
            lpf.filter_signal(baseband)?
        } else {
            let taps = SLICE_FILTER_TAPS;
            let bpf = FirFilter::band_pass(
                slice.low_hz.max(30.0),
                slice.high_hz,
                fs,
                taps,
                WindowKind::Hamming,
            )?;
            bpf.filter_signal(baseband)?
        };
        modulated.push(dsb_sc_modulate(&sliced, carrier_hz)?);
    }
    // Shared normalisation: scale all sideband drives by the same factor so
    // that the loudest one peaks at 1.0.
    let max_peak = modulated
        .iter()
        .map(|s| s.peak())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let sideband_drives: Vec<Signal> = modulated
        .into_iter()
        .map(|s| s.scaled(1.0 / max_peak))
        .collect();

    Ok(SegmentedDrives {
        carrier_drive,
        sideband_drives,
        plan,
        carrier_hz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::band_power;

    fn synthetic_baseband(fs: f64) -> Signal {
        // A voice-like mixture: components at 300, 1200 and 3000 Hz.
        let mut s = Signal::tone(300.0, 0.5, 0.3, fs).unwrap();
        s.mix(&Signal::tone(1_200.0, 0.4, 0.3, fs).unwrap())
            .unwrap();
        s.mix(&Signal::tone(3_000.0, 0.3, 0.3, fs).unwrap())
            .unwrap();
        s.normalize_peak(1.0);
        s
    }

    #[test]
    fn plan_validation_and_shape() {
        assert!(plan_segmentation(50.0, 8_000.0, 0).is_err());
        assert!(plan_segmentation(5_000.0, 1_000.0, 4).is_err());
        let plan = plan_segmentation(50.0, 8_000.0, 10).unwrap();
        assert_eq!(plan.slices.len(), 10);
        assert!((plan.slices[0].low_hz - 50.0).abs() < 1e-9);
        assert!((plan.slices[9].high_hz - 8_000.0).abs() < 1e-9);
        // Slices tile the band without gaps.
        for w in plan.slices.windows(2) {
            assert!((w[0].high_hz - w[1].low_hz).abs() < 1e-9);
        }
        let total: f64 = plan.slices.iter().map(|s| s.bandwidth_hz()).sum();
        assert!((total - 7_950.0).abs() < 1e-6);
    }

    #[test]
    fn segmentation_validation() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        assert!(segment_baseband(&baseband, 40_000.0, 8_000.0, 0).is_err());
        assert!(segment_baseband(&baseband, 25_000.0, 8_000.0, 4).is_err());
        assert!(segment_baseband(&baseband, 95_000.0, 8_000.0, 4).is_err());
        assert!(segment_baseband(&Signal::new(vec![], fs).unwrap(), 40_000.0, 8_000.0, 4).is_err());
    }

    #[test]
    fn carrier_element_is_a_pure_tone() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        let seg = segment_baseband(&baseband, 40_000.0, 8_000.0, 4).unwrap();
        assert_eq!(seg.num_drives(), 5);
        let carrier_power =
            band_power(seg.carrier_drive.samples(), fs, 39_500.0, 40_500.0).unwrap();
        let elsewhere = band_power(seg.carrier_drive.samples(), fs, 30_000.0, 38_000.0).unwrap();
        assert!(carrier_power / elsewhere.max(1e-18) > 1e4);
        assert!((seg.carrier_drive.peak() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sideband_elements_cover_disjoint_bands_around_the_carrier() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        let seg = segment_baseband(&baseband, 40_000.0, 4_000.0, 4).unwrap();
        // Slice 0 covers 50-1037 Hz -> its drive should contain the 300 Hz
        // component (at 40 kHz +- 300), slice 2 covers ~2-3 kHz -> 3 kHz
        // component sits in slice 2/3.
        let d0 = &seg.sideband_drives[0];
        let d3 = &seg.sideband_drives[3];
        let d0_near = band_power(d0.samples(), fs, 40_200.0, 40_450.0).unwrap();
        let d0_far = band_power(d0.samples(), fs, 42_500.0, 43_500.0).unwrap();
        assert!(
            d0_near / d0_far.max(1e-18) > 100.0,
            "slice 0 leaks: {}",
            d0_near / d0_far
        );
        let d3_near = band_power(d3.samples(), fs, 42_500.0, 43_500.0).unwrap();
        let d3_far = band_power(d3.samples(), fs, 40_150.0, 40_500.0).unwrap();
        assert!(
            d3_near / d3_far.max(1e-18) > 10.0,
            "slice 3 leaks: {}",
            d3_near / d3_far
        );
    }

    #[test]
    fn sideband_drives_are_normalised_together() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        let seg = segment_baseband(&baseband, 40_000.0, 8_000.0, 6).unwrap();
        let max_peak = seg
            .sideband_drives
            .iter()
            .map(|s| s.peak())
            .fold(0.0f64, f64::max);
        assert!((max_peak - 1.0).abs() < 1e-9);
        for d in &seg.sideband_drives {
            assert!(d.peak() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn all_drives_are_ultrasonic() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        let seg = segment_baseband(&baseband, 40_000.0, 8_000.0, 8).unwrap();
        for d in seg.all_drives() {
            let audible = band_power(d.samples(), fs, 50.0, 18_000.0).unwrap();
            let ultra = band_power(d.samples(), fs, 28_000.0, 52_000.0).unwrap();
            assert!(ultra / audible.max(1e-18) > 1e3);
        }
    }

    #[test]
    fn narrow_slices_are_flagged_but_do_not_lose_radiated_energy() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        let limit = minimum_resolvable_bandwidth_hz(fs, SLICE_FILTER_TAPS);
        assert!((700.0..800.0).contains(&limit), "limit {limit}");
        // 7 slices of ~1.1 kHz resolve cleanly; 60 slices of ~132 Hz are
        // below the filter's main-lobe width.
        let wide = segment_baseband(&baseband, 40_000.0, 8_000.0, 7).unwrap();
        assert!(!wide.resolution_limited());
        let narrow = segment_baseband(&baseband, 40_000.0, 8_000.0, 60).unwrap();
        assert!(narrow.resolution_limited());
        // The E-A2 audit's finding, pinned as a regression test: even far
        // below the resolution limit, the *total* radiated sideband energy
        // is preserved (overlapping skirts redistribute slice energy to
        // neighbouring elements; they do not destroy it).  The anomaly's
        // real cause was carrier power starvation, not the slice widths.
        let sideband_energy = |seg: &SegmentedDrives| -> f64 {
            seg.sideband_drives
                .iter()
                .map(|d| band_power(d.samples(), fs, 32_000.0, 48_000.0).unwrap())
                .sum()
        };
        let wide_total = sideband_energy(&wide);
        let narrow_total = sideband_energy(&narrow);
        assert!(
            narrow_total > wide_total * 0.5,
            "narrow slices collapsed: {narrow_total:.3e} vs {wide_total:.3e}"
        );
    }

    #[test]
    fn single_sideband_element_keeps_the_whole_band() {
        let fs = 192_000.0;
        let baseband = synthetic_baseband(fs);
        let seg = segment_baseband(&baseband, 40_000.0, 8_000.0, 1).unwrap();
        assert_eq!(seg.sideband_drives.len(), 1);
        let d = &seg.sideband_drives[0];
        // Contains both the 300 Hz and 3 kHz sidebands around the carrier.
        let low_sb = band_power(d.samples(), fs, 40_200.0, 40_450.0).unwrap();
        let high_sb = band_power(d.samples(), fs, 42_500.0, 43_500.0).unwrap();
        assert!(low_sb > 0.0 && high_sb > 0.0);
    }
}
