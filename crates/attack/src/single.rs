//! The baseline single-speaker attack.
//!
//! One speaker plays `n2 · (m(t)·cos(2π f_c t) + cos(2π f_c t))` — the
//! amplitude-modulated voice plus the carrier.  The victim microphone's
//! quadratic term multiplies carrier and sidebands, recovering `m(t)`.
//! This is the construction of the Song–Mittal paper and of DolphinAttack;
//! the long-range paper uses it as its baseline and shows why it cannot be
//! pushed to long range without becoming audible at the source.

use crate::baseband::{prepare_baseband, BasebandConfig};
use crate::error::{AttackError, Result};
use ivc_dsp::modulation::{am_modulate, AmConfig};
use ivc_dsp::signal::Signal;

/// A fully constructed single-speaker attack signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleSpeakerAttack {
    /// The drive waveform to feed the speaker, normalised to peak 1.
    pub drive: Signal,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// Modulation depth used.
    pub modulation_depth: f64,
    /// The prepared baseband (useful for defense-side analysis and tests).
    pub baseband: Signal,
}

impl SingleSpeakerAttack {
    /// Builds the attack signal for `voice` (any sample rate ≥ 16 kHz).
    ///
    /// `carrier_hz` must keep both sidebands above 20 kHz and below the
    /// playback Nyquist; [`BasebandConfig::minimum_carrier_hz`] and
    /// [`BasebandConfig::maximum_carrier_hz`] give the legal range.
    pub fn build(
        voice: &Signal,
        carrier_hz: f64,
        modulation_depth: f64,
        config: &BasebandConfig,
    ) -> Result<Self> {
        config.validate()?;
        if carrier_hz < config.minimum_carrier_hz() || carrier_hz > config.maximum_carrier_hz() {
            return Err(AttackError::invalid(
                "carrier_hz",
                format!(
                    "{carrier_hz} Hz outside the inaudible range [{:.0}, {:.0}] Hz",
                    config.minimum_carrier_hz(),
                    config.maximum_carrier_hz()
                ),
            ));
        }
        if !(0.1..=1.0).contains(&modulation_depth) {
            return Err(AttackError::invalid(
                "modulation_depth",
                "must be within [0.1, 1.0]",
            ));
        }
        let baseband = prepare_baseband(voice, config)?;
        // Full-carrier AM: (1 + depth*m(t)) * cos(w_c t), normalised.
        let drive = am_modulate(&baseband, &AmConfig::new(carrier_hz, modulation_depth))?;
        Ok(SingleSpeakerAttack {
            drive,
            carrier_hz,
            modulation_depth,
            baseband,
        })
    }

    /// Duration of the attack signal in seconds.
    pub fn duration_s(&self) -> f64 {
        self.drive.duration_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::modulation::square_law_demodulate;
    use ivc_dsp::spectrum::band_power;
    use ivc_speech::commands::corpus;
    use ivc_speech::synthesis::{SpeakerProfile, Synthesizer};

    fn voice() -> Signal {
        let synth = Synthesizer::new(48_000.0).unwrap();
        synth
            .render(&corpus()[0], &SpeakerProfile::canonical())
            .unwrap()
            .signal
    }

    #[test]
    fn validation() {
        let v = voice();
        let cfg = BasebandConfig::default();
        assert!(SingleSpeakerAttack::build(&v, 20_000.0, 0.8, &cfg).is_err());
        assert!(SingleSpeakerAttack::build(&v, 95_000.0, 0.8, &cfg).is_err());
        assert!(SingleSpeakerAttack::build(&v, 40_000.0, 0.0, &cfg).is_err());
        assert!(SingleSpeakerAttack::build(&v, 40_000.0, 0.8, &cfg).is_ok());
    }

    #[test]
    fn attack_signal_is_entirely_ultrasonic() {
        let attack =
            SingleSpeakerAttack::build(&voice(), 40_000.0, 0.8, &BasebandConfig::default())
                .unwrap();
        let fs = attack.drive.sample_rate_hz();
        assert_eq!(fs, 192_000.0);
        assert!((attack.drive.peak() - 1.0).abs() < 1e-6);
        let audible = band_power(attack.drive.samples(), fs, 50.0, 18_000.0).unwrap();
        let ultrasonic = band_power(attack.drive.samples(), fs, 30_000.0, 50_000.0).unwrap();
        assert!(
            ultrasonic / audible.max(1e-18) > 1e4,
            "ratio {}",
            ultrasonic / audible
        );
    }

    #[test]
    fn square_law_demodulation_recovers_the_voice_spectrum() {
        let v = voice();
        let attack =
            SingleSpeakerAttack::build(&v, 40_000.0, 0.9, &BasebandConfig::default()).unwrap();
        let demod = square_law_demodulate(&attack.drive, 8_000.0).unwrap();
        // The demodulated signal should correlate with the baseband's band
        // energy layout: strong voice band, nothing near 10-20 kHz.
        let fs = demod.sample_rate_hz();
        let voice_band = band_power(demod.samples(), fs, 100.0, 4_000.0).unwrap();
        let upper = band_power(demod.samples(), fs, 10_000.0, 20_000.0).unwrap();
        assert!(voice_band / upper.max(1e-18) > 100.0);
    }

    #[test]
    fn carrier_frequency_is_respected() {
        for carrier in [30_000.0, 40_000.0, 60_000.0] {
            let attack =
                SingleSpeakerAttack::build(&voice(), carrier, 0.8, &BasebandConfig::default())
                    .unwrap();
            let fs = attack.drive.sample_rate_hz();
            let at_carrier =
                band_power(attack.drive.samples(), fs, carrier - 500.0, carrier + 500.0).unwrap();
            let elsewhere = band_power(
                attack.drive.samples(),
                fs,
                carrier + 12_000.0,
                carrier + 20_000.0,
            )
            .unwrap_or(0.0);
            assert!(at_carrier > elsewhere * 100.0, "carrier {carrier}");
            assert!((attack.carrier_hz - carrier).abs() < 1e-9);
        }
    }
}
