//! Error type for the attack crate.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, AttackError>;

/// Errors produced while constructing or planning an attack.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// The planner could not satisfy the inaudibility constraint at any
    /// power level that still reaches the target.
    Infeasible {
        /// Human-readable explanation.
        reason: String,
    },
    /// An error bubbled up from the DSP layer.
    Dsp(ivc_dsp::DspError),
    /// An error bubbled up from the acoustics layer.
    Acoustics(ivc_acoustics::AcousticsError),
    /// An error bubbled up from the speech layer.
    Speech(ivc_speech::SpeechError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InvalidParameter { name, message } => {
                write!(f, "invalid attack parameter `{name}`: {message}")
            }
            AttackError::Infeasible { reason } => write!(f, "attack is infeasible: {reason}"),
            AttackError::Dsp(e) => write!(f, "dsp error: {e}"),
            AttackError::Acoustics(e) => write!(f, "acoustics error: {e}"),
            AttackError::Speech(e) => write!(f, "speech error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Dsp(e) => Some(e),
            AttackError::Acoustics(e) => Some(e),
            AttackError::Speech(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivc_dsp::DspError> for AttackError {
    fn from(e: ivc_dsp::DspError) -> Self {
        AttackError::Dsp(e)
    }
}

impl From<ivc_acoustics::AcousticsError> for AttackError {
    fn from(e: ivc_acoustics::AcousticsError) -> Self {
        AttackError::Acoustics(e)
    }
}

impl From<ivc_speech::SpeechError> for AttackError {
    fn from(e: ivc_speech::SpeechError) -> Self {
        AttackError::Speech(e)
    }
}

impl AttackError {
    /// Helper to build an [`AttackError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        AttackError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(AttackError::invalid("carrier", "too low")
            .to_string()
            .contains("carrier"));
        assert!(AttackError::Infeasible { reason: "x".into() }
            .to_string()
            .contains("infeasible"));
        let e: AttackError = ivc_dsp::DspError::EmptyInput { operation: "f" }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: AttackError = ivc_acoustics::AcousticsError::invalid("d", "m").into();
        assert!(e.to_string().contains("acoustics"));
        let e: AttackError = ivc_speech::SpeechError::NoTemplates.into();
        assert!(e.to_string().contains("speech"));
    }
}
