//! # ivc-attack — the long-range inaudible voice command attack
//!
//! This crate implements the paper's offensive contribution, in two tiers:
//!
//! * **The baseline single-speaker attack** ([`single`]): low-pass the voice
//!   command to 8 kHz, upsample, amplitude-modulate it onto an ultrasonic
//!   carrier and add the carrier.  The victim microphone's `g2·s²` term
//!   demodulates it back to voice.  This is the DolphinAttack /
//!   Song–Mittal construction, and it hits a wall: pushing enough power for
//!   range makes the *transmitting speaker's own* non-linearity demodulate
//!   the command audibly right next to the attacker ([`leakage`]).
//!
//! * **The long-range multi-speaker attack** ([`segmentation`],
//!   [`multispeaker`]): split the modulated spectrum across an ultrasonic
//!   speaker array so that no element carries both the carrier and a wide
//!   sideband slice.  Each element's self-intermodulation then produces only
//!   weak, narrow, unintelligible low-frequency residue, while the full
//!   command still reassembles inside the victim microphone, because only
//!   there do carrier and sidebands meet a non-linearity.  The
//!   [`planner`] chooses per-element power subject to an audibility
//!   constraint at a bystander's position.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseband;
pub mod error;
pub mod leakage;
pub mod multispeaker;
pub mod planner;
pub mod segmentation;
pub mod single;

pub use error::{AttackError, Result};
pub use multispeaker::MultiSpeakerAttack;
pub use planner::AttackPlanner;
pub use single::SingleSpeakerAttack;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::baseband::{prepare_baseband, BasebandConfig};
    pub use crate::error::{AttackError, Result};
    pub use crate::leakage::{estimate_leakage, LeakageReport};
    pub use crate::multispeaker::MultiSpeakerAttack;
    pub use crate::planner::AttackPlanner;
    pub use crate::single::SingleSpeakerAttack;
}
