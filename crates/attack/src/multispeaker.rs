//! The long-range multi-speaker attack: segmentation plus power allocation.

use crate::baseband::{prepare_baseband, BasebandConfig};
use crate::error::{AttackError, Result};
use crate::segmentation::{segment_baseband, SegmentedDrives};
use crate::single::SingleSpeakerAttack;
use ivc_acoustics::array::ElementDrive;
use ivc_dsp::signal::Signal;

/// A fully constructed multi-speaker attack.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSpeakerAttack {
    /// The segmented drives (carrier element(s) + sideband elements).
    pub drives: SegmentedDrives,
    /// Number of array elements used (carrier + sidebands).
    pub num_elements: usize,
    /// Number of elements playing the bare carrier.  More than one when the
    /// carrier's power share exceeds a single element's rating: identical
    /// carrier elements add coherently and produce no intermodulation of
    /// their own, so this is how a big array keeps its carrier-to-sideband
    /// balance (see [`MultiSpeakerAttack::build_balanced`]).
    pub carrier_elements: usize,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// The prepared baseband (for analysis and defense experiments).
    pub baseband: Signal,
}

/// How a total electrical budget was split across the elements — including
/// what could **not** be allocated because the per-element rating bound.
///
/// `element_drives` used to cap silently; sweeps over large arrays (the
/// E-A2 61-element anomaly) showed that the dropped budget matters, so the
/// allocation now reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAllocation {
    /// One drive per element: carrier element(s) first, then sidebands.
    pub drives: Vec<ElementDrive>,
    /// The budget the caller asked for, in watt.
    pub requested_total_w: f64,
    /// What was actually assigned (`requested_total_w - shortfall_w`).
    pub allocated_total_w: f64,
    /// Total power across the carrier element(s), in watt.
    pub carrier_total_w: f64,
    /// Total power across the sideband elements, in watt.
    pub sideband_total_w: f64,
    /// Budget that could not be placed on any element because every element
    /// hit its `max_element_power_w` rating, in watt.
    pub shortfall_w: f64,
}

impl MultiSpeakerAttack {
    /// Builds a multi-speaker attack for `voice` using `num_elements` array
    /// elements (1 carrier element + `num_elements - 1` sideband elements).
    ///
    /// `num_elements` must be at least 2; for a single element use
    /// [`SingleSpeakerAttack`] instead — the whole point of the multi-speaker
    /// construction is that carrier and sidebands never share an element.
    pub fn build(
        voice: &Signal,
        carrier_hz: f64,
        num_elements: usize,
        config: &BasebandConfig,
    ) -> Result<Self> {
        Self::build_with_carriers(voice, carrier_hz, num_elements, 1, config)
    }

    /// Builds a multi-speaker attack whose carrier/sideband element split is
    /// balanced against the power budget it will actually be driven with.
    ///
    /// [`MultiSpeakerAttack::build`] always dedicates exactly one element to
    /// the carrier.  For large arrays at high power that silently breaks the
    /// attack: the carrier element saturates at `max_element_power_w` while
    /// the sideband budget keeps growing, and inside the victim microphone
    /// the `sideband × sideband` self-products (baseband-squared distortion)
    /// swamp the `carrier × sideband` voice product.  This was the root
    /// cause of the E-A2 anomaly where a 61-element / 400 W array
    /// *underperformed* a 16-element / 120 W one.
    ///
    /// Here the number of carrier elements grows with the carrier's power
    /// share (`ceil(total · fraction / max_element_power)`, at most
    /// `num_elements - 1`), which keeps the demodulated voice product
    /// dominant at any scale.  Pure-tone carrier elements add coherently and
    /// create no intermodulation of their own, so the extra elements cost
    /// nothing acoustically.
    pub fn build_balanced(
        voice: &Signal,
        carrier_hz: f64,
        num_elements: usize,
        total_power_w: f64,
        carrier_power_fraction: f64,
        max_element_power_w: f64,
        config: &BasebandConfig,
    ) -> Result<Self> {
        validate_power_split(total_power_w, carrier_power_fraction, max_element_power_w)?;
        if num_elements < 2 {
            return Err(AttackError::invalid(
                "num_elements",
                "need at least 2 elements (1 carrier + 1 sideband); use SingleSpeakerAttack for 1",
            ));
        }
        let carrier_share_w = total_power_w * carrier_power_fraction;
        let carrier_elements =
            ((carrier_share_w / max_element_power_w).ceil() as usize).clamp(1, num_elements - 1);
        Self::build_with_carriers(voice, carrier_hz, num_elements, carrier_elements, config)
    }

    /// The shared constructor: `carrier_elements` elements play the bare
    /// carrier, the rest carry the spectrum slices.
    fn build_with_carriers(
        voice: &Signal,
        carrier_hz: f64,
        num_elements: usize,
        carrier_elements: usize,
        config: &BasebandConfig,
    ) -> Result<Self> {
        if num_elements < 2 {
            return Err(AttackError::invalid(
                "num_elements",
                "need at least 2 elements (1 carrier + 1 sideband); use SingleSpeakerAttack for 1",
            ));
        }
        debug_assert!((1..num_elements).contains(&carrier_elements));
        config.validate()?;
        if carrier_hz < config.minimum_carrier_hz() || carrier_hz > config.maximum_carrier_hz() {
            return Err(AttackError::invalid(
                "carrier_hz",
                format!(
                    "{carrier_hz} Hz outside the inaudible range [{:.0}, {:.0}] Hz",
                    config.minimum_carrier_hz(),
                    config.maximum_carrier_hz()
                ),
            ));
        }
        let baseband = prepare_baseband(voice, config)?;
        let drives = segment_baseband(
            &baseband,
            carrier_hz,
            config.cutoff_hz,
            num_elements - carrier_elements,
        )?;
        Ok(MultiSpeakerAttack {
            num_elements: carrier_elements + drives.sideband_drives.len(),
            carrier_elements,
            carrier_hz,
            drives,
            baseband,
        })
    }

    /// Converts the attack into per-element [`ElementDrive`]s for a speaker
    /// array, splitting `total_power_w` across the elements.
    ///
    /// The carrier element(s) receive `carrier_power_fraction` of the total
    /// (the carrier is what every sideband multiplies against inside the
    /// microphone, so it deserves a healthy share); the remainder is divided
    /// equally among the sideband elements.
    ///
    /// Convenience wrapper around [`MultiSpeakerAttack::allocate_power`]
    /// that discards the budget accounting; sweeps that care about capped
    /// budget (any experiment at serious power) should call
    /// `allocate_power` and look at [`PowerAllocation::shortfall_w`].
    pub fn element_drives(
        &self,
        total_power_w: f64,
        carrier_power_fraction: f64,
        max_element_power_w: f64,
    ) -> Result<Vec<ElementDrive>> {
        Ok(self
            .allocate_power(total_power_w, carrier_power_fraction, max_element_power_w)?
            .drives)
    }

    /// Splits `total_power_w` across the elements and reports exactly where
    /// every watt went — including the watts that went nowhere.
    ///
    /// The carrier share (`total · fraction`) is spread equally over the
    /// carrier element(s), clamped to `max_element_power_w` each; whatever
    /// the carrier cannot take is returned to the sideband pool.  Sideband
    /// elements split that pool equally, again clamped per element; any
    /// remainder is offered back to the carrier element(s) up to their
    /// rating.  Budget that still cannot be placed is **reported** as
    /// [`PowerAllocation::shortfall_w`] instead of being silently dropped.
    pub fn allocate_power(
        &self,
        total_power_w: f64,
        carrier_power_fraction: f64,
        max_element_power_w: f64,
    ) -> Result<PowerAllocation> {
        validate_power_split(total_power_w, carrier_power_fraction, max_element_power_w)?;
        let n_carriers = self.carrier_elements as f64;
        let n_sidebands = self.drives.sideband_drives.len() as f64;
        // Carrier share, spread over the carrier element(s) and clamped.
        let per_carrier =
            (total_power_w * carrier_power_fraction / n_carriers).min(max_element_power_w);
        let mut carrier_total = per_carrier * n_carriers;
        // Sidebands split the remainder equally, clamped per element.
        let per_sideband = ((total_power_w - carrier_total) / n_sidebands).min(max_element_power_w);
        let sideband_total = per_sideband * n_sidebands;
        // Overflow the sidebands could not take goes back to the carrier(s)
        // up to their rating; what is left after that is a true shortfall.
        let unplaced = total_power_w - carrier_total - sideband_total;
        let carrier_headroom = max_element_power_w * n_carriers - carrier_total;
        let topped_up = unplaced.min(carrier_headroom).max(0.0);
        carrier_total += topped_up;
        let per_carrier = carrier_total / n_carriers;
        let shortfall = (unplaced - topped_up).max(0.0);
        if per_carrier <= 0.0 || per_sideband <= 0.0 {
            return Err(AttackError::invalid(
                "total_power_w",
                "too little power to drive every element",
            ));
        }
        let mut drives = Vec::with_capacity(self.num_elements);
        for _ in 0..self.carrier_elements {
            drives.push(ElementDrive {
                drive: self.drives.carrier_drive.clone(),
                power_w: per_carrier,
            });
        }
        for sideband in &self.drives.sideband_drives {
            drives.push(ElementDrive {
                drive: sideband.clone(),
                power_w: per_sideband,
            });
        }
        Ok(PowerAllocation {
            drives,
            requested_total_w: total_power_w,
            allocated_total_w: total_power_w - shortfall,
            carrier_total_w: carrier_total,
            sideband_total_w: sideband_total,
            shortfall_w: shortfall,
        })
    }

    /// Duration of the attack in seconds.
    pub fn duration_s(&self) -> f64 {
        self.drives.carrier_drive.duration_s()
    }
}

fn validate_power_split(
    total_power_w: f64,
    carrier_power_fraction: f64,
    max_element_power_w: f64,
) -> Result<()> {
    if !(total_power_w > 0.0) || !total_power_w.is_finite() {
        return Err(AttackError::invalid("total_power_w", "must be positive"));
    }
    if !(0.05..=0.9).contains(&carrier_power_fraction) {
        return Err(AttackError::invalid(
            "carrier_power_fraction",
            "must be within [0.05, 0.9]",
        ));
    }
    if !(max_element_power_w > 0.0) || !max_element_power_w.is_finite() {
        return Err(AttackError::invalid(
            "max_element_power_w",
            "must be positive",
        ));
    }
    Ok(())
}

/// Convenience: the drive list for a *single-speaker* attack, so callers can
/// treat both attack flavours uniformly as "a list of element drives".
pub fn single_speaker_element_drives(
    attack: &SingleSpeakerAttack,
    power_w: f64,
) -> Result<Vec<ElementDrive>> {
    if !(power_w > 0.0) || !power_w.is_finite() {
        return Err(AttackError::invalid("power_w", "must be positive"));
    }
    Ok(vec![ElementDrive {
        drive: attack.drive.clone(),
        power_w,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_acoustics::array::SpeakerArray;
    use ivc_acoustics::microphone::DevicePreset;
    use ivc_acoustics::speaker::UltrasonicSpeaker;
    use ivc_acoustics::spl::spl_db_to_pressure;
    use ivc_dsp::correlation::pearson_correlation;
    use ivc_dsp::filter::biquad::BiquadCascade;
    use ivc_dsp::resample::resample;
    use ivc_dsp::spectrum::band_power;

    fn synthetic_voice(fs: f64) -> Signal {
        let mut s = Signal::tone(400.0, 0.5, 0.4, fs).unwrap();
        s.mix(&Signal::tone(1_100.0, 0.4, 0.4, fs).unwrap())
            .unwrap();
        s.mix(&Signal::tone(2_300.0, 0.3, 0.4, fs).unwrap())
            .unwrap();
        s.normalize_peak(0.5);
        s
    }

    #[test]
    fn validation() {
        let voice = synthetic_voice(48_000.0);
        let cfg = BasebandConfig::default();
        assert!(MultiSpeakerAttack::build(&voice, 40_000.0, 1, &cfg).is_err());
        assert!(MultiSpeakerAttack::build(&voice, 20_000.0, 4, &cfg).is_err());
        let attack = MultiSpeakerAttack::build(&voice, 40_000.0, 4, &cfg).unwrap();
        assert_eq!(attack.num_elements, 4);
        assert!(attack.element_drives(0.0, 0.3, 30.0).is_err());
        assert!(attack.element_drives(10.0, 0.99, 30.0).is_err());
    }

    #[test]
    fn element_power_allocation_adds_up() {
        let voice = synthetic_voice(48_000.0);
        let attack =
            MultiSpeakerAttack::build(&voice, 40_000.0, 5, &BasebandConfig::default()).unwrap();
        let drives = attack.element_drives(20.0, 0.25, 30.0).unwrap();
        assert_eq!(drives.len(), 5);
        let total: f64 = drives.iter().map(|d| d.power_w).sum();
        assert!((total - 20.0).abs() < 1e-9);
        // Carrier element gets its requested fraction.
        assert!((drives[0].power_w - 5.0).abs() < 1e-9);
        // Per-element cap is respected.
        let capped = attack.element_drives(200.0, 0.25, 30.0).unwrap();
        assert!(capped.iter().all(|d| d.power_w <= 30.0 + 1e-9));
    }

    #[test]
    fn balanced_build_scales_carrier_elements_with_the_budget() {
        let voice = synthetic_voice(48_000.0);
        let cfg = BasebandConfig::default();
        // Small budget: one carrier element, same as `build`.
        let small =
            MultiSpeakerAttack::build_balanced(&voice, 40_000.0, 8, 60.0, 0.3, 30.0, &cfg).unwrap();
        assert_eq!(small.carrier_elements, 1);
        assert_eq!(small.num_elements, 8);
        assert_eq!(small.drives.sideband_drives.len(), 7);
        // The E-A2 anomaly configuration: 400 W * 0.3 = 120 W of carrier
        // needs four 30 W elements.
        let big = MultiSpeakerAttack::build_balanced(&voice, 40_000.0, 61, 400.0, 0.3, 30.0, &cfg)
            .unwrap();
        assert_eq!(big.carrier_elements, 4);
        assert_eq!(big.num_elements, 61);
        assert_eq!(big.drives.sideband_drives.len(), 57);
        let allocation = big.allocate_power(400.0, 0.3, 30.0).unwrap();
        assert_eq!(allocation.drives.len(), 61);
        // The full carrier share is now placed (the single-carrier build
        // could only place 30 of the 120 W).
        assert!((allocation.carrier_total_w - 120.0).abs() < 1e-9);
        assert!((allocation.shortfall_w).abs() < 1e-12);
        let total: f64 = allocation.drives.iter().map(|d| d.power_w).sum();
        assert!((total - 400.0).abs() < 1e-9);
        // Even a huge budget never allocates more than one carrier short of
        // the array to the carrier.
        let capped =
            MultiSpeakerAttack::build_balanced(&voice, 40_000.0, 4, 900.0, 0.9, 30.0, &cfg)
                .unwrap();
        assert_eq!(capped.carrier_elements, 3);
        assert!(
            MultiSpeakerAttack::build_balanced(&voice, 40_000.0, 1, 60.0, 0.3, 30.0, &cfg).is_err()
        );
    }

    #[test]
    fn allocation_reports_shortfall_instead_of_dropping_budget() {
        let voice = synthetic_voice(48_000.0);
        let attack =
            MultiSpeakerAttack::build(&voice, 40_000.0, 4, &BasebandConfig::default()).unwrap();
        // 4 elements rated 30 W each can place at most 120 W.
        let allocation = attack.allocate_power(200.0, 0.25, 30.0).unwrap();
        assert!((allocation.allocated_total_w - 120.0).abs() < 1e-9);
        assert!((allocation.shortfall_w - 80.0).abs() < 1e-9);
        assert!(allocation.drives.iter().all(|d| d.power_w <= 30.0 + 1e-9));
        // The carrier is topped up to its rating before budget is declared
        // lost.
        assert!((allocation.carrier_total_w - 30.0).abs() < 1e-9);
        // Within the placeable range nothing is lost and the report matches
        // the request.
        let fits = attack.allocate_power(20.0, 0.25, 30.0).unwrap();
        assert!(fits.shortfall_w.abs() < 1e-12);
        assert!((fits.allocated_total_w - 20.0).abs() < 1e-9);
        assert!((fits.requested_total_w - 20.0).abs() < 1e-9);
        assert!((fits.carrier_total_w - 5.0).abs() < 1e-9);
        assert!((fits.sideband_total_w - 15.0).abs() < 1e-9);
    }

    #[test]
    fn single_speaker_helper() {
        let voice = synthetic_voice(48_000.0);
        let single =
            SingleSpeakerAttack::build(&voice, 40_000.0, 0.8, &BasebandConfig::default()).unwrap();
        let drives = single_speaker_element_drives(&single, 12.0).unwrap();
        assert_eq!(drives.len(), 1);
        assert!((drives[0].power_w - 12.0).abs() < 1e-12);
        assert!(single_speaker_element_drives(&single, 0.0).is_err());
    }

    #[test]
    fn end_to_end_multispeaker_attack_reconstructs_voice_at_the_microphone() {
        // The decisive property: the array's field contains (almost) no
        // audible voice, yet the non-linear microphone's recording does.
        let fs = 192_000.0;
        let voice = synthetic_voice(48_000.0);
        let attack =
            MultiSpeakerAttack::build(&voice, 40_000.0, 5, &BasebandConfig::default()).unwrap();
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 8, 0.03).unwrap();
        let drives = attack.element_drives(60.0, 0.3, 30.0).unwrap();
        let env = ivc_acoustics::environment::AirEnvironment::default();
        let field = array.field_at_target(&drives, 2.0, &env).unwrap();

        // (a) the in-air field carries essentially no audible voice energy
        //     relative to its ultrasonic content;
        let audible_in_air = band_power(field.samples(), fs, 200.0, 4_000.0).unwrap();
        let ultrasonic_in_air = band_power(field.samples(), fs, 30_000.0, 50_000.0).unwrap();
        assert!(
            audible_in_air / ultrasonic_in_air < 1e-4,
            "audible fraction in air {}",
            audible_in_air / ultrasonic_in_air
        );

        // (b) the microphone recording contains the voice components.
        let mic = DevicePreset::AndroidPhone.microphone();
        let recording = mic.capture(&field, 3).unwrap();
        let rec_fs = recording.sample_rate_hz();
        let voice_band = band_power(recording.samples(), rec_fs, 300.0, 3_000.0).unwrap();
        let quiet_band = band_power(recording.samples(), rec_fs, 8_000.0, 18_000.0).unwrap();
        assert!(
            voice_band / quiet_band > 20.0,
            "voice/quiet {}",
            voice_band / quiet_band
        );

        // (c) and that recording correlates with the original voice waveform
        //     (band-limited comparison at a common rate).
        let reference = resample(&voice, rec_fs).unwrap();
        let lpf = BiquadCascade::butterworth_low_pass(4_000.0, 4, rec_fs).unwrap();
        let rec_lp = Signal::new(lpf.filtfilt(recording.samples()), rec_fs).unwrap();
        let ref_lp = Signal::new(lpf.filtfilt(reference.samples()), rec_fs).unwrap();
        // Align coarsely: use the overlapping central second.
        let rec_mid = rec_lp.slice_seconds(0.1, 0.35);
        let ref_mid = ref_lp.slice_seconds(0.1, 0.35);
        let (_, peak) = ivc_dsp::correlation::best_alignment(
            ref_mid.samples(),
            rec_mid.samples(),
            (0.02 * rec_fs) as usize,
        )
        .unwrap();
        assert!(peak.abs() > 0.3, "correlation {peak}");
        let _ = pearson_correlation(ref_mid.samples(), rec_mid.samples()).unwrap();
        let _ = spl_db_to_pressure(0.0);
    }
}
