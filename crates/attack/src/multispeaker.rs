//! The long-range multi-speaker attack: segmentation plus power allocation.

use crate::baseband::{prepare_baseband, BasebandConfig};
use crate::error::{AttackError, Result};
use crate::segmentation::{segment_baseband, SegmentedDrives};
use crate::single::SingleSpeakerAttack;
use ivc_acoustics::array::ElementDrive;
use ivc_dsp::signal::Signal;

/// A fully constructed multi-speaker attack.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSpeakerAttack {
    /// The segmented drives (carrier element + sideband elements).
    pub drives: SegmentedDrives,
    /// Number of array elements used (carrier + sidebands).
    pub num_elements: usize,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// The prepared baseband (for analysis and defense experiments).
    pub baseband: Signal,
}

impl MultiSpeakerAttack {
    /// Builds a multi-speaker attack for `voice` using `num_elements` array
    /// elements (1 carrier element + `num_elements - 1` sideband elements).
    ///
    /// `num_elements` must be at least 2; for a single element use
    /// [`SingleSpeakerAttack`] instead — the whole point of the multi-speaker
    /// construction is that carrier and sidebands never share an element.
    pub fn build(
        voice: &Signal,
        carrier_hz: f64,
        num_elements: usize,
        config: &BasebandConfig,
    ) -> Result<Self> {
        if num_elements < 2 {
            return Err(AttackError::invalid(
                "num_elements",
                "need at least 2 elements (1 carrier + 1 sideband); use SingleSpeakerAttack for 1",
            ));
        }
        config.validate()?;
        if carrier_hz < config.minimum_carrier_hz() || carrier_hz > config.maximum_carrier_hz() {
            return Err(AttackError::invalid(
                "carrier_hz",
                format!(
                    "{carrier_hz} Hz outside the inaudible range [{:.0}, {:.0}] Hz",
                    config.minimum_carrier_hz(),
                    config.maximum_carrier_hz()
                ),
            ));
        }
        let baseband = prepare_baseband(voice, config)?;
        let drives = segment_baseband(&baseband, carrier_hz, config.cutoff_hz, num_elements - 1)?;
        Ok(MultiSpeakerAttack {
            num_elements: drives.num_drives(),
            carrier_hz,
            drives,
            baseband,
        })
    }

    /// Converts the attack into per-element [`ElementDrive`]s for a speaker
    /// array, splitting `total_power_w` across the elements.
    ///
    /// The carrier element receives `carrier_power_fraction` of the total
    /// (the carrier is what every sideband multiplies against inside the
    /// microphone, so it deserves a healthy share); the remainder is divided
    /// equally among the sideband elements.
    pub fn element_drives(
        &self,
        total_power_w: f64,
        carrier_power_fraction: f64,
        max_element_power_w: f64,
    ) -> Result<Vec<ElementDrive>> {
        if !(total_power_w > 0.0) || !total_power_w.is_finite() {
            return Err(AttackError::invalid("total_power_w", "must be positive"));
        }
        if !(0.05..=0.9).contains(&carrier_power_fraction) {
            return Err(AttackError::invalid(
                "carrier_power_fraction",
                "must be within [0.05, 0.9]",
            ));
        }
        let n_sidebands = self.drives.sideband_drives.len();
        let carrier_power = (total_power_w * carrier_power_fraction).min(max_element_power_w);
        let sideband_power =
            ((total_power_w - carrier_power) / n_sidebands as f64).min(max_element_power_w);
        if carrier_power <= 0.0 || sideband_power <= 0.0 {
            return Err(AttackError::invalid(
                "total_power_w",
                "too little power to drive every element",
            ));
        }
        let mut drives = Vec::with_capacity(self.num_elements);
        drives.push(ElementDrive {
            drive: self.drives.carrier_drive.clone(),
            power_w: carrier_power,
        });
        for sideband in &self.drives.sideband_drives {
            drives.push(ElementDrive {
                drive: sideband.clone(),
                power_w: sideband_power,
            });
        }
        Ok(drives)
    }

    /// Duration of the attack in seconds.
    pub fn duration_s(&self) -> f64 {
        self.drives.carrier_drive.duration_s()
    }
}

/// Convenience: the drive list for a *single-speaker* attack, so callers can
/// treat both attack flavours uniformly as "a list of element drives".
pub fn single_speaker_element_drives(
    attack: &SingleSpeakerAttack,
    power_w: f64,
) -> Result<Vec<ElementDrive>> {
    if !(power_w > 0.0) || !power_w.is_finite() {
        return Err(AttackError::invalid("power_w", "must be positive"));
    }
    Ok(vec![ElementDrive {
        drive: attack.drive.clone(),
        power_w,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_acoustics::array::SpeakerArray;
    use ivc_acoustics::microphone::DevicePreset;
    use ivc_acoustics::speaker::UltrasonicSpeaker;
    use ivc_acoustics::spl::spl_db_to_pressure;
    use ivc_dsp::correlation::pearson_correlation;
    use ivc_dsp::filter::biquad::BiquadCascade;
    use ivc_dsp::resample::resample;
    use ivc_dsp::spectrum::band_power;

    fn synthetic_voice(fs: f64) -> Signal {
        let mut s = Signal::tone(400.0, 0.5, 0.4, fs).unwrap();
        s.mix(&Signal::tone(1_100.0, 0.4, 0.4, fs).unwrap())
            .unwrap();
        s.mix(&Signal::tone(2_300.0, 0.3, 0.4, fs).unwrap())
            .unwrap();
        s.normalize_peak(0.5);
        s
    }

    #[test]
    fn validation() {
        let voice = synthetic_voice(48_000.0);
        let cfg = BasebandConfig::default();
        assert!(MultiSpeakerAttack::build(&voice, 40_000.0, 1, &cfg).is_err());
        assert!(MultiSpeakerAttack::build(&voice, 20_000.0, 4, &cfg).is_err());
        let attack = MultiSpeakerAttack::build(&voice, 40_000.0, 4, &cfg).unwrap();
        assert_eq!(attack.num_elements, 4);
        assert!(attack.element_drives(0.0, 0.3, 30.0).is_err());
        assert!(attack.element_drives(10.0, 0.99, 30.0).is_err());
    }

    #[test]
    fn element_power_allocation_adds_up() {
        let voice = synthetic_voice(48_000.0);
        let attack =
            MultiSpeakerAttack::build(&voice, 40_000.0, 5, &BasebandConfig::default()).unwrap();
        let drives = attack.element_drives(20.0, 0.25, 30.0).unwrap();
        assert_eq!(drives.len(), 5);
        let total: f64 = drives.iter().map(|d| d.power_w).sum();
        assert!((total - 20.0).abs() < 1e-9);
        // Carrier element gets its requested fraction.
        assert!((drives[0].power_w - 5.0).abs() < 1e-9);
        // Per-element cap is respected.
        let capped = attack.element_drives(200.0, 0.25, 30.0).unwrap();
        assert!(capped.iter().all(|d| d.power_w <= 30.0 + 1e-9));
    }

    #[test]
    fn single_speaker_helper() {
        let voice = synthetic_voice(48_000.0);
        let single =
            SingleSpeakerAttack::build(&voice, 40_000.0, 0.8, &BasebandConfig::default()).unwrap();
        let drives = single_speaker_element_drives(&single, 12.0).unwrap();
        assert_eq!(drives.len(), 1);
        assert!((drives[0].power_w - 12.0).abs() < 1e-12);
        assert!(single_speaker_element_drives(&single, 0.0).is_err());
    }

    #[test]
    fn end_to_end_multispeaker_attack_reconstructs_voice_at_the_microphone() {
        // The decisive property: the array's field contains (almost) no
        // audible voice, yet the non-linear microphone's recording does.
        let fs = 192_000.0;
        let voice = synthetic_voice(48_000.0);
        let attack =
            MultiSpeakerAttack::build(&voice, 40_000.0, 5, &BasebandConfig::default()).unwrap();
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 8, 0.03).unwrap();
        let drives = attack.element_drives(60.0, 0.3, 30.0).unwrap();
        let env = ivc_acoustics::environment::AirEnvironment::default();
        let field = array.field_at_target(&drives, 2.0, &env).unwrap();

        // (a) the in-air field carries essentially no audible voice energy
        //     relative to its ultrasonic content;
        let audible_in_air = band_power(field.samples(), fs, 200.0, 4_000.0).unwrap();
        let ultrasonic_in_air = band_power(field.samples(), fs, 30_000.0, 50_000.0).unwrap();
        assert!(
            audible_in_air / ultrasonic_in_air < 1e-4,
            "audible fraction in air {}",
            audible_in_air / ultrasonic_in_air
        );

        // (b) the microphone recording contains the voice components.
        let mic = DevicePreset::AndroidPhone.microphone();
        let recording = mic.capture(&field, 3).unwrap();
        let rec_fs = recording.sample_rate_hz();
        let voice_band = band_power(recording.samples(), rec_fs, 300.0, 3_000.0).unwrap();
        let quiet_band = band_power(recording.samples(), rec_fs, 8_000.0, 18_000.0).unwrap();
        assert!(
            voice_band / quiet_band > 20.0,
            "voice/quiet {}",
            voice_band / quiet_band
        );

        // (c) and that recording correlates with the original voice waveform
        //     (band-limited comparison at a common rate).
        let reference = resample(&voice, rec_fs).unwrap();
        let lpf = BiquadCascade::butterworth_low_pass(4_000.0, 4, rec_fs).unwrap();
        let rec_lp = Signal::new(lpf.filtfilt(recording.samples()), rec_fs).unwrap();
        let ref_lp = Signal::new(lpf.filtfilt(reference.samples()), rec_fs).unwrap();
        // Align coarsely: use the overlapping central second.
        let rec_mid = rec_lp.slice_seconds(0.1, 0.35);
        let ref_mid = ref_lp.slice_seconds(0.1, 0.35);
        let (_, peak) = ivc_dsp::correlation::best_alignment(
            ref_mid.samples(),
            rec_mid.samples(),
            (0.02 * rec_fs) as usize,
        )
        .unwrap();
        assert!(peak.abs() > 0.3, "correlation {peak}");
        let _ = pearson_correlation(ref_mid.samples(), rec_mid.samples()).unwrap();
        let _ = spl_db_to_pressure(0.0);
    }
}
