//! Baseband preparation: turning a voice command waveform into the signal
//! that will be modulated onto the ultrasonic carrier.
//!
//! The steps follow the paper's attack algorithm: low-pass filter to 8 kHz
//! (speech recognisers keep little above that), normalise, and upsample to a
//! playback rate high enough to represent the carrier and both sidebands
//! (192 kHz or 384 kHz).

use crate::error::{AttackError, Result};
use ivc_dsp::filter::fir::FirFilter;
use ivc_dsp::resample::resample;
use ivc_dsp::signal::Signal;
use ivc_dsp::window::WindowKind;

/// Configuration for baseband preparation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasebandConfig {
    /// Low-pass cutoff applied to the voice command, in Hz.
    pub cutoff_hz: f64,
    /// Playback sample rate of the ultrasonic signal, in Hz.
    pub playback_rate_hz: f64,
}

impl Default for BasebandConfig {
    fn default() -> Self {
        BasebandConfig {
            cutoff_hz: 8_000.0,
            playback_rate_hz: 192_000.0,
        }
    }
}

impl BasebandConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(1_000.0..=12_000.0).contains(&self.cutoff_hz) {
            return Err(AttackError::invalid(
                "cutoff_hz",
                "must be within [1 kHz, 12 kHz]",
            ));
        }
        if !(96_000.0..=768_000.0).contains(&self.playback_rate_hz) {
            return Err(AttackError::invalid(
                "playback_rate_hz",
                "must be within [96 kHz, 768 kHz]",
            ));
        }
        Ok(())
    }

    /// Lowest carrier frequency that keeps the lower sideband above 20 kHz.
    pub fn minimum_carrier_hz(&self) -> f64 {
        20_000.0 + self.cutoff_hz
    }

    /// Highest carrier frequency representable at the playback rate with the
    /// upper sideband intact.
    pub fn maximum_carrier_hz(&self) -> f64 {
        self.playback_rate_hz / 2.0 - self.cutoff_hz
    }
}

/// Prepares a voice command for ultrasonic modulation: band-limit, remove
/// DC, normalise the peak to 1.0 and resample to the playback rate.
pub fn prepare_baseband(voice: &Signal, config: &BasebandConfig) -> Result<Signal> {
    config.validate()?;
    if voice.is_empty() {
        return Err(AttackError::invalid("voice", "empty signal"));
    }
    if voice.sample_rate_hz() < 2.0 * config.cutoff_hz {
        return Err(AttackError::invalid(
            "voice",
            "sample rate too low for the requested cutoff",
        ));
    }
    // Low-pass at the cutoff.
    let lpf = FirFilter::low_pass(
        config.cutoff_hz,
        voice.sample_rate_hz(),
        255,
        WindowKind::Hamming,
    )?;
    let mut filtered = lpf.filter_signal(voice)?;
    filtered.remove_dc();
    // Upsample to the playback rate.
    let mut upsampled = resample(&filtered, config.playback_rate_hz)?;
    upsampled.normalize_peak(1.0);
    Ok(upsampled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::band_power;
    use ivc_speech::commands::corpus;
    use ivc_speech::synthesis::{SpeakerProfile, Synthesizer};

    #[test]
    fn validation() {
        let bad_cutoff = BasebandConfig {
            cutoff_hz: 100.0,
            ..BasebandConfig::default()
        };
        assert!(bad_cutoff.validate().is_err());
        let bad_rate = BasebandConfig {
            playback_rate_hz: 44_100.0,
            ..BasebandConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let cfg = BasebandConfig::default();
        assert!(prepare_baseband(&Signal::new(vec![], 48_000.0).unwrap(), &cfg).is_err());
        let too_slow = Signal::tone(1_000.0, 0.5, 0.1, 12_000.0).unwrap();
        assert!(prepare_baseband(&too_slow, &cfg).is_err());
    }

    #[test]
    fn carrier_bounds_follow_the_paper() {
        let cfg = BasebandConfig::default();
        assert!((cfg.minimum_carrier_hz() - 28_000.0).abs() < 1e-9);
        assert!((cfg.maximum_carrier_hz() - 88_000.0).abs() < 1e-9);
    }

    #[test]
    fn output_is_band_limited_normalised_and_at_playback_rate() {
        let fs = 48_000.0;
        let mut voice = Signal::tone(1_000.0, 0.4, 0.4, fs).unwrap();
        voice
            .mix(&Signal::tone(14_000.0, 0.4, 0.4, fs).unwrap())
            .unwrap();
        let cfg = BasebandConfig::default();
        let baseband = prepare_baseband(&voice, &cfg).unwrap();
        assert_eq!(baseband.sample_rate_hz(), 192_000.0);
        assert!((baseband.peak() - 1.0).abs() < 1e-9);
        let kept = band_power(baseband.samples(), 192_000.0, 800.0, 1_200.0).unwrap();
        let removed = band_power(baseband.samples(), 192_000.0, 13_000.0, 15_000.0).unwrap();
        assert!(kept / removed.max(1e-18) > 1_000.0);
    }

    #[test]
    fn synthesised_command_survives_preparation() {
        let synth = Synthesizer::new(48_000.0).unwrap();
        let utt = synth
            .render(&corpus()[0], &SpeakerProfile::canonical())
            .unwrap();
        let baseband = prepare_baseband(&utt.signal, &BasebandConfig::default()).unwrap();
        assert!((baseband.duration_s() - utt.signal.duration_s()).abs() < 0.02);
        // Voice-band energy dominates.
        let voice_band = band_power(baseband.samples(), 192_000.0, 80.0, 8_000.0).unwrap();
        let above = band_power(baseband.samples(), 192_000.0, 9_000.0, 90_000.0).unwrap();
        assert!(voice_band / above.max(1e-18) > 100.0);
    }
}
