//! The attack planner: how much power can the attacker use without being
//! heard, and how far does that power reach?
//!
//! Two tools are provided:
//!
//! * [`AttackPlanner::max_inaudible_total_power`] — a bisection over total
//!   drive power that finds the largest power at which the leakage heard by
//!   a bystander near the array stays below the audibility threshold.
//! * A link-budget estimate ([`AttackPlanner::link_budget`],
//!   [`AttackPlanner::predicted_range_m`]) that predicts the demodulated
//!   signal-to-noise ratio at the victim microphone as a function of
//!   distance, without synthesising waveforms — fast enough to sweep.

use crate::error::{AttackError, Result};
use crate::leakage::estimate_leakage;
use ivc_acoustics::array::{ElementDrive, SpeakerArray};
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::microphone::Microphone;
use ivc_acoustics::propagation::path_loss_from_aperture_db;

/// Planner configuration and environment.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackPlanner {
    /// How far from the array the nearest bystander is assumed to stand.
    pub bystander_distance_m: f64,
    /// Extra margin (dB) required below the hearing threshold before the
    /// leakage is declared inaudible; larger is more conservative.
    pub audibility_margin_db: f64,
    /// Air environment shared by both the leakage and the link budget.
    pub env: AirEnvironment,
}

impl Default for AttackPlanner {
    fn default() -> Self {
        AttackPlanner {
            bystander_distance_m: 1.0,
            audibility_margin_db: 0.0,
            env: AirEnvironment::default(),
        }
    }
}

/// Link-budget summary at one distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Distance from array to victim, in metres.
    pub distance_m: f64,
    /// Carrier SPL arriving at the microphone, in dB.
    pub received_carrier_spl_db: f64,
    /// Demodulated baseband level, in dB relative to digital full scale.
    pub demodulated_dbfs: f64,
    /// Effective noise floor (microphone self noise + quantisation), dBFS.
    pub noise_floor_dbfs: f64,
    /// Demodulated signal-to-noise ratio, in dB.
    pub snr_db: f64,
}

impl LinkBudget {
    /// A recogniser needs roughly this much SNR to decode most words; used
    /// by [`AttackPlanner::predicted_range_m`].
    pub const REQUIRED_SNR_DB: f64 = 15.0;

    /// `true` if the predicted SNR clears the recognition threshold.
    pub fn is_predicted_successful(&self) -> bool {
        self.snr_db >= Self::REQUIRED_SNR_DB
    }
}

impl AttackPlanner {
    /// Finds, by bisection, the largest total drive power (W) for which the
    /// leakage at the bystander position stays inaudible.
    ///
    /// `build_drives` maps a candidate total power to the per-element drive
    /// list (it is the caller's attack construction, e.g.
    /// [`crate::multispeaker::MultiSpeakerAttack::element_drives`]).
    /// Returns `Err(Infeasible)` if even `min_power_w` is audible.
    pub fn max_inaudible_total_power(
        &self,
        array: &SpeakerArray,
        min_power_w: f64,
        max_power_w: f64,
        mut build_drives: impl FnMut(f64) -> Result<Vec<ElementDrive>>,
    ) -> Result<f64> {
        if !(min_power_w > 0.0) || max_power_w <= min_power_w {
            return Err(AttackError::invalid(
                "power range",
                "need 0 < min_power_w < max_power_w",
            ));
        }
        let audible_at = |planner: &Self,
                          power: f64,
                          drives: &mut dyn FnMut(f64) -> Result<Vec<ElementDrive>>|
         -> Result<bool> {
            let d = drives(power)?;
            let report = estimate_leakage(
                array,
                &d,
                planner.bystander_distance_m,
                &planner.env,
                planner.audibility_margin_db,
            )?;
            Ok(report.is_audible())
        };
        if audible_at(self, min_power_w, &mut build_drives)? {
            return Err(AttackError::Infeasible {
                reason: format!("leakage is audible even at the minimum power of {min_power_w} W"),
            });
        }
        if !audible_at(self, max_power_w, &mut build_drives)? {
            return Ok(max_power_w);
        }
        let mut low = min_power_w;
        let mut high = max_power_w;
        for _ in 0..12 {
            let mid = (low + high) / 2.0;
            if audible_at(self, mid, &mut build_drives)? {
                high = mid;
            } else {
                low = mid;
            }
        }
        Ok(low)
    }

    /// Predicts the demodulated SNR at the victim microphone for an attack
    /// whose carrier element radiates `carrier_spl_at_1m_db` and whose
    /// sideband elements together radiate `sideband_spl_at_1m_db` (both
    /// referenced to 1 m from the array).
    ///
    /// `aperture_m` is the radiating array's physical aperture
    /// ([`SpeakerArray::aperture_m`]; pass 0 for a single speaker): the
    /// on-axis beam stays collimated out to the aperture's Rayleigh
    /// distance, exactly as in the waveform-level
    /// [`SpeakerArray::field_at_target`] simulation, so planner predictions
    /// and trial outcomes agree.
    pub fn link_budget(
        &self,
        carrier_spl_at_1m_db: f64,
        sideband_spl_at_1m_db: f64,
        carrier_hz: f64,
        distance_m: f64,
        aperture_m: f64,
        microphone: &Microphone,
    ) -> Result<LinkBudget> {
        if !(distance_m > 0.0) {
            return Err(AttackError::invalid("distance_m", "must be positive"));
        }
        let loss = path_loss_from_aperture_db(carrier_hz, distance_m, aperture_m, &self.env)?;
        let received_carrier = carrier_spl_at_1m_db - loss;
        let received_sideband = sideband_spl_at_1m_db - loss;

        // Both components pass the acoustic front end, then multiply inside
        // the g2 term.  Express them as fractions of digital full scale.
        let aop = microphone.acoustic_overload_point_db_spl;
        let front_end_db = 20.0 * microphone.front_end_gain(carrier_hz).max(1e-12).log10();
        let a_carrier = 10f64.powf((received_carrier + front_end_db - aop) / 20.0);
        let a_sideband = 10f64.powf((received_sideband + front_end_db - aop) / 20.0);
        let demodulated = microphone.nonlinearity.g2.abs() * a_carrier * a_sideband;
        let demodulated_dbfs = 20.0 * demodulated.max(1e-15).log10();

        // Noise floor: the larger of the capsule self noise (referred to
        // full scale) and the ADC noise floor.
        let self_noise_dbfs = microphone.self_noise_db_spl - aop;
        let noise_floor_dbfs = self_noise_dbfs.max(microphone.adc.noise_floor_dbfs);
        let snr_db = demodulated_dbfs - noise_floor_dbfs;
        Ok(LinkBudget {
            distance_m,
            received_carrier_spl_db: received_carrier,
            demodulated_dbfs,
            noise_floor_dbfs,
            snr_db,
        })
    }

    /// The largest distance (searched in 0.1 m steps up to `max_distance_m`)
    /// at which the link budget still clears [`LinkBudget::REQUIRED_SNR_DB`].
    pub fn predicted_range_m(
        &self,
        carrier_spl_at_1m_db: f64,
        sideband_spl_at_1m_db: f64,
        carrier_hz: f64,
        aperture_m: f64,
        microphone: &Microphone,
        max_distance_m: f64,
    ) -> Result<f64> {
        if !(max_distance_m > 0.0) {
            return Err(AttackError::invalid("max_distance_m", "must be positive"));
        }
        let mut range = 0.0;
        let mut d = 0.1;
        while d <= max_distance_m {
            let budget = self.link_budget(
                carrier_spl_at_1m_db,
                sideband_spl_at_1m_db,
                carrier_hz,
                d,
                aperture_m,
                microphone,
            )?;
            if budget.is_predicted_successful() {
                range = d;
            }
            d += 0.1;
        }
        Ok(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseband::BasebandConfig;
    use crate::multispeaker::{single_speaker_element_drives, MultiSpeakerAttack};
    use crate::single::SingleSpeakerAttack;
    use ivc_acoustics::microphone::DevicePreset;
    use ivc_acoustics::speaker::UltrasonicSpeaker;
    use ivc_dsp::signal::Signal;

    fn synthetic_voice() -> Signal {
        let fs = 48_000.0;
        let mut s = Signal::tone(400.0, 0.5, 0.35, fs).unwrap();
        s.mix(&Signal::tone(1_500.0, 0.4, 0.35, fs).unwrap())
            .unwrap();
        s.normalize_peak(0.5);
        s
    }

    #[test]
    fn validation() {
        let planner = AttackPlanner::default();
        let mic = DevicePreset::AndroidPhone.microphone();
        assert!(planner
            .link_budget(110.0, 104.0, 40_000.0, 0.0, 0.0, &mic)
            .is_err());
        assert!(planner
            .predicted_range_m(110.0, 104.0, 40_000.0, 0.0, &mic, 0.0)
            .is_err());
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03).unwrap();
        assert!(planner
            .max_inaudible_total_power(&array, 5.0, 1.0, |_| Ok(vec![]))
            .is_err());
    }

    #[test]
    fn link_budget_snr_falls_with_distance() {
        let planner = AttackPlanner::default();
        let mic = DevicePreset::AndroidPhone.microphone();
        let near = planner
            .link_budget(115.0, 109.0, 40_000.0, 1.0, 0.0, &mic)
            .unwrap();
        let far = planner
            .link_budget(115.0, 109.0, 40_000.0, 8.0, 0.0, &mic)
            .unwrap();
        assert!(near.snr_db > far.snr_db + 20.0);
        assert!(near.is_predicted_successful());
    }

    #[test]
    fn predicted_range_grows_with_radiated_power() {
        let planner = AttackPlanner::default();
        let mic = DevicePreset::AndroidPhone.microphone();
        let short = planner
            .predicted_range_m(100.0, 94.0, 40_000.0, 0.0, &mic, 15.0)
            .unwrap();
        let long = planner
            .predicted_range_m(120.0, 114.0, 40_000.0, 0.0, &mic, 15.0)
            .unwrap();
        assert!(long > short, "{short} -> {long}");
        assert!(long > 2.0);
    }

    #[test]
    fn echo_has_shorter_predicted_range_than_phone() {
        let planner = AttackPlanner::default();
        let phone = DevicePreset::AndroidPhone.microphone();
        let echo = DevicePreset::AmazonEcho.microphone();
        let phone_range = planner
            .predicted_range_m(115.0, 109.0, 40_000.0, 0.0, &phone, 15.0)
            .unwrap();
        let echo_range = planner
            .predicted_range_m(115.0, 109.0, 40_000.0, 0.0, &echo, 15.0)
            .unwrap();
        assert!(
            phone_range > echo_range,
            "phone {phone_range} vs echo {echo_range}"
        );
        assert!(echo_range > 0.0);
    }

    #[test]
    fn array_aperture_extends_predicted_range() {
        // Same radiated levels, but from a 12-element array (0.33 m
        // aperture): the collimated beam must predict a longer reach than a
        // point source — mirroring what SpeakerArray::field_at_target
        // simulates at the waveform level.
        let planner = AttackPlanner::default();
        let mic = DevicePreset::AndroidPhone.microphone();
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 12, 0.03).unwrap();
        let point = planner
            .predicted_range_m(115.0, 109.0, 40_000.0, 0.0, &mic, 15.0)
            .unwrap();
        let beamed = planner
            .predicted_range_m(115.0, 109.0, 40_000.0, array.aperture_m(), &mic, 15.0)
            .unwrap();
        assert!(beamed > point + 1.0, "point {point} m vs beamed {beamed} m");
    }

    #[test]
    fn multispeaker_attack_supports_more_inaudible_power_than_single() {
        let voice = synthetic_voice();
        let cfg = BasebandConfig::default();
        let planner = AttackPlanner::default();
        let env_ok = planner.env == AirEnvironment::default();
        assert!(env_ok);

        // Single speaker.
        let single = SingleSpeakerAttack::build(&voice, 40_000.0, 0.9, &cfg).unwrap();
        let single_array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03).unwrap();
        let single_max = planner
            .max_inaudible_total_power(&single_array, 0.05, 30.0, |p| {
                single_speaker_element_drives(&single, p)
            })
            .unwrap_or(0.05);

        // Multi-speaker (6 elements).
        let multi = MultiSpeakerAttack::build(&voice, 40_000.0, 6, &cfg).unwrap();
        let multi_array = SpeakerArray::new(UltrasonicSpeaker::default(), 6, 0.03).unwrap();
        let multi_max = planner
            .max_inaudible_total_power(&multi_array, 0.05, 6.0 * 30.0, |p| {
                multi.element_drives(p, 0.3, 30.0)
            })
            .unwrap();

        assert!(
            multi_max > single_max * 2.0,
            "multi {multi_max} W should exceed single {single_max} W"
        );
    }
}
