//! Speaker-side leakage estimation.
//!
//! "Leakage" is the audible sound created *at the transmitting array* by the
//! elements' own non-linearities.  For the single-speaker attack the leakage
//! is literally an audible rendition of the injected command; for the
//! segmented attack it collapses to weak low-frequency residue.  The paper's
//! inaudibility evaluation is reproduced by estimating the leakage a
//! bystander standing near the array would hear.

use crate::error::Result;
use ivc_acoustics::array::{ElementDrive, SpeakerArray};
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::psychoacoustics::{audibility, AudibilityReport};
use ivc_acoustics::spl::{pressure_to_spl_db, waveform_spl_dba};
use ivc_dsp::spectrum::band_power;

/// Result of a leakage analysis at a bystander's position.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Psychoacoustic audibility verdict for the audible-band residue.
    pub audibility: AudibilityReport,
    /// Unweighted SPL of the audible-band (50 Hz – 18 kHz) leakage, in dB.
    pub audible_spl_db: f64,
    /// A-weighted SPL of the full leakage waveform, in dB(A).
    pub audible_spl_dba: f64,
    /// SPL of the leakage restricted to the intelligible voice band
    /// (300 Hz – 4 kHz), in dB — high values mean a bystander would not just
    /// hear *something* but could plausibly make out the command.
    pub voice_band_spl_db: f64,
    /// Distance at which the estimate was made, in metres.
    pub bystander_distance_m: f64,
}

impl LeakageReport {
    /// `true` when the leakage would be noticed by a bystander.
    pub fn is_audible(&self) -> bool {
        self.audibility.audible
    }
}

/// Estimates the leakage heard by a bystander `bystander_distance_m` from
/// the array while it plays `drives`, assuming free-field propagation.
pub fn estimate_leakage(
    array: &SpeakerArray,
    drives: &[ElementDrive],
    bystander_distance_m: f64,
    env: &AirEnvironment,
    audibility_margin_db: f64,
) -> Result<LeakageReport> {
    let field = array.field_at_bystander(drives, bystander_distance_m, env)?;
    leakage_from_field(&field, bystander_distance_m, audibility_margin_db)
}

/// Analyses an already-propagated pressure waveform at the bystander's
/// position — the back half of [`estimate_leakage`], split out so callers
/// that propagate through a room model (multipath, occlusion) can reuse
/// the psychoacoustic analysis unchanged.
pub fn leakage_from_field(
    field: &ivc_dsp::signal::Signal,
    bystander_distance_m: f64,
    audibility_margin_db: f64,
) -> Result<LeakageReport> {
    let fs = field.sample_rate_hz();
    let report = audibility(field.samples(), fs, audibility_margin_db)?;
    let audible_power = band_power(field.samples(), fs, 50.0, 18_000.0)?;
    let voice_power = band_power(field.samples(), fs, 300.0, 4_000.0)?;
    let dba = waveform_spl_dba(field.samples(), fs)?;
    Ok(LeakageReport {
        audible_spl_db: pressure_to_spl_db(audible_power.max(0.0).sqrt()),
        audible_spl_dba: dba,
        voice_band_spl_db: pressure_to_spl_db(voice_power.max(0.0).sqrt()),
        audibility: report,
        bystander_distance_m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseband::BasebandConfig;
    use crate::multispeaker::{single_speaker_element_drives, MultiSpeakerAttack};
    use crate::single::SingleSpeakerAttack;
    use ivc_acoustics::speaker::UltrasonicSpeaker;
    use ivc_dsp::signal::Signal;

    fn synthetic_voice() -> Signal {
        let fs = 48_000.0;
        let mut s = Signal::tone(400.0, 0.5, 0.4, fs).unwrap();
        s.mix(&Signal::tone(1_300.0, 0.4, 0.4, fs).unwrap())
            .unwrap();
        s.mix(&Signal::tone(2_600.0, 0.3, 0.4, fs).unwrap())
            .unwrap();
        s.normalize_peak(0.5);
        s
    }

    #[test]
    fn single_speaker_at_high_power_leaks_audibly() {
        let voice = synthetic_voice();
        let cfg = BasebandConfig::default();
        let attack = SingleSpeakerAttack::build(&voice, 40_000.0, 0.9, &cfg).unwrap();
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03).unwrap();
        let env = AirEnvironment::default();
        let quiet = estimate_leakage(
            &array,
            &single_speaker_element_drives(&attack, 0.5).unwrap(),
            1.0,
            &env,
            0.0,
        )
        .unwrap();
        let loud = estimate_leakage(
            &array,
            &single_speaker_element_drives(&attack, 29.0).unwrap(),
            1.0,
            &env,
            0.0,
        )
        .unwrap();
        // Leakage grows with power, and at full power it is audible.
        assert!(loud.audible_spl_db > quiet.audible_spl_db + 15.0);
        assert!(
            loud.is_audible(),
            "worst margin {}",
            loud.audibility.worst_margin_db
        );
        assert!((loud.bystander_distance_m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segmented_attack_leaks_far_less_than_single_speaker_at_equal_power() {
        let voice = synthetic_voice();
        let cfg = BasebandConfig::default();
        let total_power = 29.0;
        let env = AirEnvironment::default();

        let single = SingleSpeakerAttack::build(&voice, 40_000.0, 0.9, &cfg).unwrap();
        let single_array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03).unwrap();
        let single_leak = estimate_leakage(
            &single_array,
            &single_speaker_element_drives(&single, total_power).unwrap(),
            1.0,
            &env,
            0.0,
        )
        .unwrap();

        let multi = MultiSpeakerAttack::build(&voice, 40_000.0, 6, &cfg).unwrap();
        let multi_array = SpeakerArray::new(UltrasonicSpeaker::default(), 6, 0.03).unwrap();
        let drives = multi.element_drives(total_power, 0.3, 30.0).unwrap();
        let multi_leak = estimate_leakage(&multi_array, &drives, 1.0, &env, 0.0).unwrap();

        // The headline claim: at the same total power, splitting the
        // spectrum across elements removes most of the intelligible
        // (voice-band) leakage.
        assert!(
            single_leak.voice_band_spl_db > multi_leak.voice_band_spl_db + 10.0,
            "single {} dB vs multi {} dB",
            single_leak.voice_band_spl_db,
            multi_leak.voice_band_spl_db
        );
    }

    #[test]
    fn leakage_fades_with_bystander_distance() {
        let voice = synthetic_voice();
        let cfg = BasebandConfig::default();
        let attack = SingleSpeakerAttack::build(&voice, 40_000.0, 0.9, &cfg).unwrap();
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03).unwrap();
        let env = AirEnvironment::default();
        let drives = single_speaker_element_drives(&attack, 20.0).unwrap();
        let near = estimate_leakage(&array, &drives, 1.0, &env, 0.0).unwrap();
        let far = estimate_leakage(&array, &drives, 4.0, &env, 0.0).unwrap();
        assert!(near.audible_spl_db > far.audible_spl_db + 8.0);
    }
}
