#!/usr/bin/env bash
# Regenerates the machine-readable bench snapshot from the harness's
# stable `BENCH <group>/<name> min=… mean=… max=… ns/iter (N samples)`
# lines, covering the pipeline, campaign, merge and room groups — plus
# the per-stage time attribution of a telemetry-instrumented `repro
# profile smoke` run.  The snapshot is committed (BENCH_pr10.json) so
# perf movement shows up as a reviewable diff, and CI regenerates it on
# every push and uploads the fresh copy as an artifact for side-by-side
# comparison.
#
# Usage: scripts/bench-snapshot.sh [OUT_FILE]    (default: BENCH_pr10.json)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"

lines="$(cargo bench -p ivc-bench --bench pipeline_benches --bench room_benches \
  | tee /dev/stderr | grep '^BENCH ' || true)"
if [ -z "$lines" ]; then
  echo "error: no BENCH lines captured — did the harness output format change?" >&2
  exit 1
fi

printf '%s\n' "$lines" | awk -v out="$out" '
{
    # $2 is "<group>/<name>"; the name itself may contain further slashes.
    split($2, id, "/")
    group = id[1]
    name = substr($2, length(group) + 2)
    min = $3;  sub(/^min=/, "", min)
    mean = $4; sub(/^mean=/, "", mean)
    max = $5;  sub(/^max=/, "", max)
    samples = $7; sub(/^\(/, "", samples)
    entries[NR] = sprintf("    {\"group\": \"%s\", \"name\": \"%s\", \"min_ns\": %s, \"mean_ns\": %s, \"max_ns\": %s, \"samples\": %s}", group, name, min, mean, max, samples)
}
END {
    print "{" > out
    print "  \"format\": \"ivc-bench-snapshot-v1\"," > out
    print "  \"benches\": [" > out
    for (i = 1; i <= NR; i++) {
        print entries[i] (i < NR ? "," : "") > out
    }
    print "  ]" > out
    print "}" > out
}'

# Fold in the stage attribution of a profiled smoke campaign: where the
# pipeline's wall clock actually goes, span by span (ivc-metrics-v1 via
# `repro profile --metrics`).
metrics="$(mktemp)"
trap 'rm -f "$metrics"' EXIT
cargo run --release -p ivc-bench --bin repro -- profile smoke --metrics "$metrics" >&2
python3 - "$out" "$metrics" <<'PY'
import json, sys

out_path, metrics_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    doc = json.load(f)
with open(metrics_path) as f:
    metrics = json.load(f)
doc["stage_attribution"] = {
    "preset": "smoke",
    "workers": 1,
    "wall_s": metrics["wall_s"],
    "spans": [
        {k: s[k] for k in ("name", "count", "total_ns", "mean_ns")}
        for s in metrics["spans"]
    ],
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
echo "wrote $out" >&2
