#!/usr/bin/env bash
# Regenerates the machine-readable bench snapshot from the harness's
# stable `BENCH <group>/<name> min=… mean=… max=… ns/iter (N samples)`
# lines, covering the pipeline, campaign and room groups.  The snapshot
# is committed (BENCH_pr6.json) so perf movement shows up as a
# reviewable diff, and CI regenerates it on every push and uploads the
# fresh copy as an artifact for side-by-side comparison.
#
# Usage: scripts/bench-snapshot.sh [OUT_FILE]    (default: BENCH_pr6.json)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr6.json}"

lines="$(cargo bench -p ivc-bench --bench pipeline_benches --bench room_benches \
  | tee /dev/stderr | grep '^BENCH ' || true)"
if [ -z "$lines" ]; then
  echo "error: no BENCH lines captured — did the harness output format change?" >&2
  exit 1
fi

printf '%s\n' "$lines" | awk -v out="$out" '
{
    # $2 is "<group>/<name>"; the name itself may contain further slashes.
    split($2, id, "/")
    group = id[1]
    name = substr($2, length(group) + 2)
    min = $3;  sub(/^min=/, "", min)
    mean = $4; sub(/^mean=/, "", mean)
    max = $5;  sub(/^max=/, "", max)
    samples = $7; sub(/^\(/, "", samples)
    entries[NR] = sprintf("    {\"group\": \"%s\", \"name\": \"%s\", \"min_ns\": %s, \"mean_ns\": %s, \"max_ns\": %s, \"samples\": %s}", group, name, min, mean, max, samples)
}
END {
    print "{" > out
    print "  \"format\": \"ivc-bench-snapshot-v1\"," > out
    print "  \"benches\": [" > out
    for (i = 1; i <= NR; i++) {
        print entries[i] (i < NR ? "," : "") > out
    }
    print "  ]" > out
    print "}" > out
}'
echo "wrote $out" >&2
