//! Why the naive attack cannot be both long-range and inaudible: sweep the
//! drive power of a single ultrasonic speaker and of a segmented array and
//! watch what a bystander standing one metre away would hear.
//!
//! Run with: `cargo run --release --example audibility_sweep`

use inaudible_voice_commands::acoustics::array::SpeakerArray;
use inaudible_voice_commands::acoustics::environment::AirEnvironment;
use inaudible_voice_commands::acoustics::speaker::UltrasonicSpeaker;
use inaudible_voice_commands::attack::baseband::BasebandConfig;
use inaudible_voice_commands::attack::leakage::estimate_leakage;
use inaudible_voice_commands::attack::multispeaker::{
    single_speaker_element_drives, MultiSpeakerAttack,
};
use inaudible_voice_commands::attack::single::SingleSpeakerAttack;
use inaudible_voice_commands::speech::commands::corpus;
use inaudible_voice_commands::speech::synthesis::{SpeakerProfile, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let synth = Synthesizer::new(48_000.0)?;
    let voice_full = synth
        .render(&corpus()[0], &SpeakerProfile::canonical())?
        .signal;
    let voice = voice_full.slice_seconds(0.0, 1.2);
    let cfg = BasebandConfig::default();
    let env = AirEnvironment::default();

    println!("bystander standing 1 m from the transmitter\n");
    println!("--- single speaker (carrier + sidebands on one tweeter) ---");
    let single = SingleSpeakerAttack::build(&voice, 40_000.0, 0.9, &cfg)?;
    let single_array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03)?;
    println!(
        "{:>10}  {:>16}  {:>18}  {:>8}",
        "power (W)", "leak SPL (dB)", "voice-band (dB)", "audible"
    );
    for power in [1.0, 4.0, 10.0, 20.0, 29.0] {
        let drives = single_speaker_element_drives(&single, power)?;
        let leak = estimate_leakage(&single_array, &drives, 1.0, &env, 0.0)?;
        println!(
            "{power:>10.1}  {:>16.1}  {:>18.1}  {:>8}",
            leak.audible_spl_db,
            leak.voice_band_spl_db,
            leak.is_audible()
        );
    }

    println!("\n--- segmented array (carrier separated from spectrum slices) ---");
    println!(
        "{:>10}  {:>10}  {:>16}  {:>18}  {:>8}",
        "elements", "power (W)", "leak SPL (dB)", "voice-band (dB)", "audible"
    );
    for n in [2usize, 4, 8, 16] {
        let attack = MultiSpeakerAttack::build(&voice, 40_000.0, n, &cfg)?;
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), n, 0.03)?;
        let total_power = 7.0 * n as f64;
        let drives = attack.element_drives(total_power, 0.3, 30.0)?;
        let leak = estimate_leakage(&array, &drives, 1.0, &env, 0.0)?;
        println!(
            "{n:>10}  {total_power:>10.1}  {:>16.1}  {:>18.1}  {:>8}",
            leak.audible_spl_db,
            leak.voice_band_spl_db,
            leak.is_audible()
        );
    }
    println!("\nThe single speaker becomes audible long before it delivers long-range power;");
    println!("the segmented array keeps the voice-band leakage far lower at much higher totals.");
    Ok(())
}
