//! Train the software defense on simulated recordings and evaluate it:
//! corpus generation → feature extraction → logistic regression → confusion
//! matrix and ROC.
//!
//! Run with: `cargo run --release --example defense_evaluation`

use inaudible_voice_commands::defense::classifier::{LogisticRegression, TrainingConfig};
use inaudible_voice_commands::defense::dataset::{Dataset, DatasetConfig};
use inaudible_voice_commands::defense::evaluation::{evaluate, RocCurve};
use inaudible_voice_commands::defense::features::DefenseFeatures;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let config = DatasetConfig {
        distances_m: vec![1.5, 3.0],
        num_speaker_variants: 3,
        command_indices: vec![0, 1],
        attack_elements: 8,
        max_voice_duration_s: 1.2,
        ..DatasetConfig::default()
    };
    println!("generating the labelled corpus (this runs the full acoustic simulation)...");
    let dataset = Dataset::generate(&config)?;
    println!(
        "  {} recordings ({} attacks, {} legitimate)",
        dataset.len(),
        dataset.num_attacks(),
        dataset.len() - dataset.num_attacks()
    );

    let (train, test) = dataset.split_features(3)?;
    println!(
        "  train: {} samples, test: {} samples",
        train.len(),
        test.len()
    );

    let model = LogisticRegression::train(&train, &TrainingConfig::default())?;
    println!("\ntrained detector weights (standardised feature space):");
    for (name, w) in DefenseFeatures::NAMES.iter().zip(model.weights()) {
        println!("  {name:>26}: {w:+.3}");
    }

    let matrix = evaluate(&model, &test)?;
    println!("\nheld-out evaluation:");
    println!("  accuracy:            {:.2}", matrix.accuracy());
    println!("  detection rate (TPR): {:.2}", matrix.true_positive_rate());
    println!(
        "  false positives (FPR): {:.2}",
        matrix.false_positive_rate()
    );

    let roc = RocCurve::from_model(&model, &test)?;
    println!("  ROC AUC:             {:.3}", roc.auc);
    Ok(())
}
