//! A custom campaign grid through the parallel engine: element count ×
//! distance, repeated trials, aggregate statistics and a JSON archive.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```
//!
//! Writes `campaign-element-sweep.json` into the working directory; inspect
//! it (or reload it with `CampaignReport::load`) to post-process results
//! without re-running the simulation.

use inaudible_voice_commands::prelude::*;
use std::path::Path;

fn main() -> Result<()> {
    // The grid: how does attack success scale with array size at a fixed
    // per-element power budget (7 W/element, the E-A3 convention)?
    let spec = CampaignSpec {
        deliveries: [4usize, 8, 16]
            .into_iter()
            .map(|n| {
                DeliverySpec::array(
                    format!("{n} elements, {} W", 7 * n),
                    n,
                    7.0 * n as f64,
                    40_000.0,
                )
            })
            .collect(),
        distances_m: vec![1.0, 2.5, 4.0],
        environments: vec![EnvironmentPreset::MeetingRoom],
        trials_per_cell: 2,
        base_seed: 7,
        // Keep the example fast: truncate the command to its first second.
        max_voice_duration_s: 1.0,
        ..CampaignSpec::new("campaign-element-sweep")
    };

    println!(
        "running '{}': {} cells x {} trials on {} workers...\n",
        spec.name,
        spec.num_cells(),
        spec.trials_per_cell,
        ivc_experiments::default_workers()
    );
    let report = run_campaign(&spec, ivc_experiments::default_workers())?;

    // Aggregates per cell...
    println!("{}", report.summary_table().render());
    // ...and the psychometric success-vs-distance curves with 95 % CIs.
    for curve in &report.curves {
        println!("curve [{}]:", curve.label);
        for (i, d) in curve.distances_m.iter().enumerate() {
            println!(
                "  {d} m: success {:.2} [{:.2}, {:.2}], word accuracy {:.2}",
                curve.success_rates[i],
                curve.ci_low[i],
                curve.ci_high[i],
                curve.mean_word_accuracy[i],
            );
        }
    }

    // Archive the whole report (spec + per-trial records + aggregates).
    let path = Path::new("campaign-element-sweep.json");
    report.save(path)?;
    println!("\narchived to {}", path.display());

    // The archive is lossless: reloading gives back the identical report.
    let reloaded = CampaignReport::load(path)?;
    assert_eq!(reloaded, report);
    Ok(())
}
