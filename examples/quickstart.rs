//! Quickstart: build one inaudible attack, play it at a simulated phone,
//! and see both sides — does the assistant obey, and does the defense
//! notice?
//!
//! Run with: `cargo run --release --example quickstart`

use inaudible_voice_commands::core::{run_trial, Delivery, Scenario};
use inaudible_voice_commands::speech::commands::corpus;
use inaudible_voice_commands::speech::recognizer::Recognizer;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // The victim's speech recogniser, enrolled with the command corpus.
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[0]; // "ok google take a picture"

    // An 8-element ultrasonic array, 2 m from an Android phone.
    let scenario = Scenario {
        delivery: Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        },
        max_voice_duration_s: 1.5, // keep the example snappy
        ..Scenario::default_attack()
    };

    println!("injecting: \"{}\"", command.text);
    println!(
        "scenario:  {} at {:.1} m from the Android phone",
        scenario.delivery.label(),
        scenario.distance_m
    );

    let outcome = run_trial(command, &scenario, &recognizer, None)?;

    println!();
    println!("command accepted by the assistant: {}", outcome.accepted);
    println!(
        "word accuracy:                     {:.2}",
        outcome.word_accuracy
    );
    if let Some(leak) = &outcome.leakage {
        println!(
            "leakage at a bystander (1 m):      {:.1} dB SPL (audible: {})",
            leak.audible_spl_db,
            leak.is_audible()
        );
    }
    println!(
        "defense trace — shadow power ratio {:.1} dB, shadow correlation {:.2}",
        outcome.defense_features.shadow_power_ratio_db, outcome.defense_features.shadow_correlation
    );
    println!();
    println!("(A legitimate speaker at the same distance leaves shadow correlation near zero —");
    println!(" run `cargo run --release --example defense_evaluation` to see the detector trained on that gap.)");
    Ok(())
}
