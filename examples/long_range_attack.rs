//! The paper's headline experiment in miniature: how far does the inaudible
//! attack reach with a single speaker versus a speaker array?
//!
//! Run with: `cargo run --release --example long_range_attack`

use inaudible_voice_commands::core::{run_trial, Delivery, Scenario};
use inaudible_voice_commands::speech::commands::corpus;
use inaudible_voice_commands::speech::recognizer::Recognizer;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[2]; // "ok google turn on airplane mode"
    let distances = [1.0, 2.0, 4.0, 6.0, 8.0];

    let configurations = [
        (
            "single speaker, 3 W (inaudibility-constrained)",
            Delivery::SingleSpeakerUltrasound {
                power_w: 3.0,
                carrier_hz: 40_000.0,
            },
        ),
        (
            "16-element array, 120 W total",
            Delivery::ArrayUltrasound {
                num_elements: 16,
                total_power_w: 120.0,
                carrier_hz: 40_000.0,
            },
        ),
    ];

    println!("command: \"{}\"", command.text);
    println!(
        "{:>10}  {:>44}  {:>10}",
        "distance", "configuration", "accuracy"
    );
    for (label, delivery) in configurations {
        for d in distances {
            let scenario = Scenario {
                delivery,
                max_voice_duration_s: 1.2,
                ..Scenario::default_attack()
            }
            .at_distance(d);
            let outcome = run_trial(command, &scenario, &recognizer, None)?;
            println!("{d:>8.1} m  {label:>44}  {:>10.2}", outcome.word_accuracy);
        }
        println!();
    }
    println!("The single speaker collapses within a couple of metres once its power is capped");
    println!("for inaudibility; the array keeps the command intelligible several metres out.");
    Ok(())
}
