//! # inaudible-voice-commands
//!
//! Umbrella crate of the reproduction of *"Inaudible Voice Commands: The
//! Long-Range Attack and Defense"* (NSDI 2018).  It re-exports the
//! workspace crates under one roof so that examples, integration tests and
//! downstream users can depend on a single package:
//!
//! * [`dsp`] — signal-processing substrate (FFT, filters, resampling, STFT,
//!   modulation).
//! * [`acoustics`] — propagation, non-linear speaker/microphone models,
//!   speaker arrays, psychoacoustics.
//! * [`speech`] — formant synthesiser, command corpus, MFCC/DTW recogniser.
//! * [`attack`] — the single-speaker baseline and the long-range
//!   multi-speaker ultrasonic injection.
//! * [`defense`] — non-linearity-trace features, classifier, evaluation.
//! * [`room`] — shoebox room acoustics: image-source reflections, RT60,
//!   materials, line-segment occlusion, named room presets.
//! * [`core`] — end-to-end scenarios, the trial pipeline and result tables.
//! * [`experiments`] — the parallel campaign engine: parameter grids,
//!   worker-pool execution, shard-parallel multi-process execution with
//!   byte-identical merge, aggregate statistics, JSON report archival.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the reproduced tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ivc_acoustics as acoustics;
pub use ivc_attack as attack;
pub use ivc_core as core;
pub use ivc_defense as defense;
pub use ivc_dsp as dsp;
pub use ivc_experiments as experiments;
pub use ivc_room as room;
pub use ivc_speech as speech;

/// The most commonly used items across the workspace, in one import.
pub mod prelude {
    pub use ivc_acoustics::prelude::*;
    pub use ivc_attack::prelude::*;
    pub use ivc_core::{run_trial, Delivery, PrepareContext, PreparedCell, Scenario, TrialOutcome};
    pub use ivc_defense::prelude::*;
    pub use ivc_dsp::prelude::*;
    pub use ivc_experiments::{
        merge_shards, run_campaign, run_shard, CampaignReport, CampaignSpec, CellCoords,
        DeliverySpec, DetectorSpec, EnvironmentPreset, ShardArchive, ShardJob, ShardPlan,
        ShardRange,
    };
    pub use ivc_room::{propagate_in_room, RoomInstance, RoomPreset};
    pub use ivc_speech::prelude::*;

    // Every substrate prelude exports its own `Result` alias; pick the
    // end-to-end pipeline's boxed-error alias for the umbrella prelude so
    // the glob re-exports above stay unambiguous.
    pub use ivc_core::Result;
}

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        // Touch one item from every re-exported crate.
        let _ = crate::dsp::window::WindowKind::Hann.symmetric(8);
        let _ = crate::acoustics::environment::AirEnvironment::default();
        let _ = crate::speech::commands::corpus();
        let _ = crate::attack::baseband::BasebandConfig::default();
        let _ = crate::defense::features::DefenseFeatures::DIMENSION;
        let _ = crate::core::Scenario::default_attack();
        let _ = crate::experiments::CampaignSpec::new("wired");
        let _ = crate::room::RoomPreset::Office.room();
    }
}
