//! Stage-equivalence suite for the staged trial pipeline.
//!
//! The refactor's tentpole promise: splitting `run_trial` into
//! **Prepare → Perturb → Evaluate** changed *where* the work happens, not
//! *what* is computed.  This suite keeps a test-local copy of the
//! pre-refactor monolithic pipeline (`legacy_run_trial`, the exact
//! operation order of the old `ivc_core::pipeline::run_trial`) and pins
//! the staged pipeline against it **bit for bit** — across every delivery
//! kind, the free field and all five room presets, and under fuzzed
//! scenario parameters.

use inaudible_voice_commands::acoustics::array::{ElementDrive, SpeakerArray};
use inaudible_voice_commands::acoustics::environment::AirEnvironment;
use inaudible_voice_commands::acoustics::noise::room_noise_pa;
use inaudible_voice_commands::acoustics::propagation::{propagate, propagate_from_aperture};
use inaudible_voice_commands::acoustics::speaker::UltrasonicSpeaker;
use inaudible_voice_commands::acoustics::spl::spl_db_to_pressure;
use inaudible_voice_commands::attack::baseband::BasebandConfig;
use inaudible_voice_commands::attack::leakage::{leakage_from_field, LeakageReport};
use inaudible_voice_commands::attack::multispeaker::{
    single_speaker_element_drives, MultiSpeakerAttack,
};
use inaudible_voice_commands::attack::single::SingleSpeakerAttack;
use inaudible_voice_commands::core::scenario::{Delivery, Scenario};
use inaudible_voice_commands::core::{
    run_trial, PrepareContext, PreparedCell, Result, TrialOutcome,
};
use inaudible_voice_commands::defense::features::DefenseFeatures;
use inaudible_voice_commands::dsp::signal::Signal;
use inaudible_voice_commands::room::{propagate_in_room, RoomInstance, RoomPreset};
use inaudible_voice_commands::speech::commands::{corpus, VoiceCommand};
use inaudible_voice_commands::speech::recognizer::Recognizer;
use inaudible_voice_commands::speech::synthesis::{SpeakerProfile, Synthesizer};
use proptest::prelude::*;

/// The pre-refactor monolithic pipeline, preserved verbatim (modulo the
/// module paths) as the bit-identity reference.
fn legacy_run_trial(
    command: &VoiceCommand,
    scenario: &Scenario,
    recognizer: &Recognizer,
) -> Result<TrialOutcome> {
    let synth = Synthesizer::new(48_000.0)?;
    let profile = match scenario.delivery {
        Delivery::Legitimate { .. } => SpeakerProfile::variant(scenario.seed as usize % 8),
        _ => SpeakerProfile::canonical(),
    };
    let utterance = synth.render(command, &profile)?;
    let voice = if utterance.signal.duration_s() > scenario.max_voice_duration_s {
        utterance
            .signal
            .slice_seconds(0.0, scenario.max_voice_duration_s)
    } else {
        utterance.signal.clone()
    };

    let room = match scenario.room {
        None => None,
        Some(preset) => {
            Some(preset.instantiate(scenario.distance_m, scenario.bystander_distance_m)?)
        }
    };
    let (mut pressure_at_port, leakage, power_shortfall_w) = match scenario.delivery {
        Delivery::Legitimate { talker_spl_db } => {
            let rms = voice.rms().max(1e-12);
            let pressure_at_1m = voice.scaled(spl_db_to_pressure(talker_spl_db) / rms);
            let at_port =
                legacy_propagate_to_target(&pressure_at_1m, 0.0, scenario, room.as_ref())?;
            (at_port, None, 0.0)
        }
        Delivery::SingleSpeakerUltrasound {
            power_w,
            carrier_hz,
        } => {
            let attack =
                SingleSpeakerAttack::build(&voice, carrier_hz, 0.9, &BasebandConfig::default())?;
            let speaker = UltrasonicSpeaker::default();
            let array = SpeakerArray::new(speaker.clone(), 1, 0.03)?;
            let placed_w = power_w.min(speaker.max_power_w);
            let drives = single_speaker_element_drives(&attack, placed_w)?;
            let (at_port, leak) = legacy_deliver_attack(&array, &drives, scenario, room.as_ref())?;
            (at_port, Some(leak), power_w - placed_w)
        }
        Delivery::ArrayUltrasound {
            num_elements,
            total_power_w,
            carrier_hz,
        } => {
            let speaker = UltrasonicSpeaker::default();
            let array = SpeakerArray::new(speaker.clone(), num_elements.max(1), 0.03)?;
            let (drives, shortfall_w) = if num_elements <= 1 {
                let attack = SingleSpeakerAttack::build(
                    &voice,
                    carrier_hz,
                    0.9,
                    &BasebandConfig::default(),
                )?;
                let placed_w = total_power_w.min(speaker.max_power_w);
                (
                    single_speaker_element_drives(&attack, placed_w)?,
                    total_power_w - placed_w,
                )
            } else {
                let attack = MultiSpeakerAttack::build_balanced(
                    &voice,
                    carrier_hz,
                    num_elements,
                    total_power_w,
                    0.3,
                    speaker.max_power_w,
                    &BasebandConfig::default(),
                )?;
                let allocation = attack.allocate_power(total_power_w, 0.3, speaker.max_power_w)?;
                (allocation.drives, allocation.shortfall_w)
            };
            let (at_port, leak) = legacy_deliver_attack(&array, &drives, scenario, room.as_ref())?;
            (at_port, Some(leak), shortfall_w)
        }
    };

    let noise = room_noise_pa(
        scenario.ambient_noise_spl_db,
        pressure_at_port.duration_s(),
        pressure_at_port.sample_rate_hz(),
        scenario.seed ^ 0xDEAD_BEEF,
    )?;
    pressure_at_port.mix(&noise)?;
    let recording = scenario
        .device
        .microphone()
        .capture(&pressure_at_port, scenario.seed)?;

    let evaluation = recognizer.evaluate(&recording, command.id)?;
    let word_accuracy = evaluation.word_accuracy;
    let accepted = evaluation.accepted;
    let recognized_words: Vec<String> = evaluation
        .word_recognition
        .into_iter()
        .filter(|(_, ok)| *ok)
        .map(|(word, _)| word)
        .collect();
    let defense_features = DefenseFeatures::extract(&recording)?;

    Ok(TrialOutcome {
        recording,
        accepted,
        word_accuracy,
        recognized_words,
        bystander_spl_db: leakage.as_ref().map(|leak| leak.audible_spl_db),
        power_shortfall_w,
        seed: scenario.seed,
        leakage,
        defense_features,
        detection_probability: None,
    })
}

fn legacy_propagate_to_target(
    source_at_1m: &Signal,
    aperture_m: f64,
    scenario: &Scenario,
    room: Option<&RoomInstance>,
) -> Result<Signal> {
    match room {
        None => Ok(propagate_from_aperture(
            source_at_1m,
            scenario.distance_m,
            aperture_m,
            &scenario.env,
        )?),
        Some(instance) => Ok(propagate_in_room(
            source_at_1m,
            &instance.target_rir(aperture_m)?,
            &scenario.env,
        )?),
    }
}

fn legacy_deliver_attack(
    array: &SpeakerArray,
    drives: &[ElementDrive],
    scenario: &Scenario,
    room: Option<&RoomInstance>,
) -> Result<(Signal, LeakageReport)> {
    let near = array.emitted_field_at_1m(drives)?;
    let at_port = legacy_propagate_to_target(&near, array.aperture_m(), scenario, room)?;
    let env: &AirEnvironment = &scenario.env;
    let bystander_field = match room {
        None => propagate(&near, scenario.bystander_distance_m, env)?,
        Some(instance) => propagate_in_room(&near, &instance.bystander_rir()?, env)?,
    };
    let leak = leakage_from_field(&bystander_field, scenario.bystander_distance_m, 0.0)?;
    Ok((at_port, leak))
}

fn scenario_for(delivery: Delivery, room: Option<RoomPreset>, seed: u64) -> Scenario {
    Scenario {
        delivery,
        room,
        seed,
        max_voice_duration_s: 0.5,
        ..Scenario::default_attack()
    }
}

const DELIVERY_KINDS: [Delivery; 3] = [
    Delivery::Legitimate {
        talker_spl_db: 68.0,
    },
    Delivery::SingleSpeakerUltrasound {
        power_w: 18.7,
        carrier_hz: 40_000.0,
    },
    Delivery::ArrayUltrasound {
        num_elements: 6,
        total_power_w: 60.0,
        carrier_hz: 40_000.0,
    },
];

const ROOM_AXIS: [Option<RoomPreset>; 6] = [
    None,
    Some(RoomPreset::Anechoic),
    Some(RoomPreset::Office),
    Some(RoomPreset::ConferenceRoom),
    Some(RoomPreset::Corridor),
    Some(RoomPreset::ThroughDoorway),
];

#[test]
fn staged_pipeline_is_bit_identical_to_the_legacy_monolith_everywhere() {
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];
    for delivery in DELIVERY_KINDS {
        for room in ROOM_AXIS {
            let scenario = scenario_for(delivery, room, 3);
            let legacy = legacy_run_trial(command, &scenario, &recognizer).unwrap();
            let staged = run_trial(command, &scenario, &recognizer, None).unwrap();
            // The whole outcome, recording bytes included, must match.
            assert_eq!(
                staged, legacy,
                "staged != legacy for {delivery:?} in {room:?}"
            );
        }
    }
}

#[test]
fn shared_prepared_cell_reproduces_every_per_seed_legacy_trial() {
    // The campaign sharing contract: one PreparedCell serving several
    // seeds is bit-identical to rebuilding the monolith per seed — for a
    // legitimate delivery this also exercises the seed % 8 talker
    // variants sharing one cell.
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[1];
    let seeds: [u64; 3] = [2, 9, 10]; // variants 2, 1, 2
    for delivery in [
        DELIVERY_KINDS[0],
        Delivery::ArrayUltrasound {
            num_elements: 4,
            total_power_w: 28.0,
            carrier_hz: 40_000.0,
        },
    ] {
        let scenario = scenario_for(delivery, Some(RoomPreset::Office), seeds[0]);
        let ctx = PrepareContext::new().unwrap();
        let prepared = PreparedCell::prepare(&ctx, command, &scenario, &seeds).unwrap();
        for seed in seeds {
            let staged = prepared.run(seed, &recognizer, None).unwrap();
            let legacy = legacy_run_trial(command, &scenario.with_seed(seed), &recognizer).unwrap();
            assert_eq!(staged, legacy, "seed {seed} diverged for {delivery:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fuzzed scenario parameters: the staged pipeline tracks the legacy
    /// monolith bit for bit wherever both run.
    #[test]
    fn staged_equals_legacy_under_fuzzed_scenarios(
        seed in 0u64..1_000,
        delivery_pick in 0usize..3,
        room_pick in 0usize..ROOM_AXIS.len(),
        distance_db in 0usize..3,
        noise_db in 30.0f64..55.0,
    ) {
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[seed as usize % corpus().len()];
        let scenario = Scenario {
            distance_m: [1.0, 2.0, 3.5][distance_db],
            ambient_noise_spl_db: noise_db,
            ..scenario_for(DELIVERY_KINDS[delivery_pick], ROOM_AXIS[room_pick], seed)
        };
        let legacy = legacy_run_trial(command, &scenario, &recognizer).unwrap();
        let staged = run_trial(command, &scenario, &recognizer, None).unwrap();
        prop_assert_eq!(staged, legacy);
    }
}
