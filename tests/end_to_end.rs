//! Cross-crate integration tests: the full attack and defense loop through
//! the public umbrella API.

use inaudible_voice_commands::core::{run_trial, Delivery, Scenario};
use inaudible_voice_commands::defense::classifier::{LogisticRegression, TrainingConfig};
use inaudible_voice_commands::defense::dataset::{Dataset, DatasetConfig};
use inaudible_voice_commands::defense::evaluation::evaluate;
use inaudible_voice_commands::speech::commands::corpus;
use inaudible_voice_commands::speech::recognizer::Recognizer;

fn quick(delivery: Delivery) -> Scenario {
    Scenario {
        delivery,
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    }
}

#[test]
fn legitimate_and_attack_deliveries_are_both_accepted_at_close_range() {
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];

    let legit = run_trial(
        command,
        &quick(Delivery::Legitimate {
            talker_spl_db: 68.0,
        })
        .at_distance(1.5),
        &recognizer,
        None,
    )
    .unwrap();
    let attack = run_trial(
        command,
        &quick(Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        })
        .at_distance(1.5),
        &recognizer,
        None,
    )
    .unwrap();

    assert!(
        legit.word_accuracy > 0.5,
        "legit accuracy {}",
        legit.word_accuracy
    );
    assert!(
        attack.word_accuracy > 0.5,
        "attack accuracy {}",
        attack.word_accuracy
    );
    // The attack leaves its tell-tale shadow, the legitimate recording does not.
    assert!(
        attack.defense_features.shadow_correlation > legit.defense_features.shadow_correlation,
        "attack shadow {} vs legit {}",
        attack.defense_features.shadow_correlation,
        legit.defense_features.shadow_correlation
    );
    assert!(
        attack.defense_features.shadow_power_ratio_db
            > legit.defense_features.shadow_power_ratio_db + 3.0
    );
}

#[test]
fn array_attack_outranges_the_inaudibility_constrained_single_speaker() {
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];
    let distance = 5.0;

    let single = run_trial(
        command,
        &quick(Delivery::SingleSpeakerUltrasound {
            power_w: 3.0,
            carrier_hz: 40_000.0,
        })
        .at_distance(distance),
        &recognizer,
        None,
    )
    .unwrap();
    let array = run_trial(
        command,
        &quick(Delivery::ArrayUltrasound {
            num_elements: 12,
            total_power_w: 100.0,
            carrier_hz: 40_000.0,
        })
        .at_distance(distance),
        &recognizer,
        None,
    )
    .unwrap();

    assert!(
        array.word_accuracy > single.word_accuracy,
        "array {} should beat single {} at {distance} m",
        array.word_accuracy,
        single.word_accuracy
    );
    // And the array's voice-band leakage stays below the single speaker's
    // would-be leakage at the power it would need for the same reach.
    let array_leak = array.leakage.unwrap();
    assert!(
        array_leak.voice_band_spl_db < 45.0,
        "voice-band leak {}",
        array_leak.voice_band_spl_db
    );
}

#[test]
fn trained_detector_separates_attacks_from_legitimate_recordings() {
    let config = DatasetConfig {
        distances_m: vec![1.5, 3.0],
        num_speaker_variants: 2,
        command_indices: vec![0],
        attack_elements: 6,
        max_voice_duration_s: 0.9,
        ..DatasetConfig::default()
    };
    let train_set = Dataset::generate(&config)
        .unwrap()
        .to_feature_samples()
        .unwrap();
    let model = LogisticRegression::train(&train_set, &TrainingConfig::default()).unwrap();

    // A fresh, differently-seeded corpus as the held-out test set.
    let test_config = DatasetConfig {
        seed: 99,
        command_indices: vec![1],
        ..config
    };
    let test_set = Dataset::generate(&test_config)
        .unwrap()
        .to_feature_samples()
        .unwrap();
    let matrix = evaluate(&model, &test_set).unwrap();
    assert!(
        matrix.accuracy() >= 0.75,
        "held-out detection accuracy {} too low",
        matrix.accuracy()
    );
}

#[test]
fn rooms_reshape_the_attack_and_the_doorway_hides_the_leak() {
    // The room subsystem's acceptance criteria, asserted end to end on
    // one campaign: (1) the reverberant ConferenceRoom produces a
    // measurably different success-vs-distance psychometric curve than
    // Anechoic for the same array and power — early reflections add
    // coherent carrier energy at the microphone, which at this power
    // level extends the usable range; (2) firing through an open doorway
    // attenuates the bystander-audible leakage far more than it degrades
    // the ultrasonic voice path (the beam goes through the gap, the leak
    // through the drywall).
    use inaudible_voice_commands::experiments::{
        default_workers, run_campaign, CampaignSpec, CellCoords, DeliverySpec,
    };
    use inaudible_voice_commands::room::RoomPreset;

    let spec = CampaignSpec {
        deliveries: vec![DeliverySpec::array(
            "12-element array, 60 W",
            12,
            60.0,
            40_000.0,
        )],
        rooms: vec![
            Some(RoomPreset::Anechoic),
            Some(RoomPreset::ConferenceRoom),
            Some(RoomPreset::ThroughDoorway),
        ],
        distances_m: vec![2.0, 3.0, 5.0, 6.0],
        max_voice_duration_s: 1.1,
        ..CampaignSpec::new("room-acceptance")
    };
    let report = run_campaign(&spec, default_workers()).unwrap();
    let curve = |room_index: usize| {
        report
            .curves
            .iter()
            .find(|c| c.coords.room_index == room_index)
            .expect("one curve per room")
    };
    let anechoic = curve(0);
    let conference = curve(1);
    let doorway = curve(2);

    // (1) Measurably different psychometric curves: the accuracy gap must
    // be at least one word (0.2) at two or more distances.
    let big_gaps = anechoic
        .mean_word_accuracy
        .iter()
        .zip(conference.mean_word_accuracy.iter())
        .filter(|(a, c)| (*a - *c).abs() >= 0.19)
        .count();
    assert!(
        big_gaps >= 2,
        "conference room curve too close to anechoic: {:?} vs {:?}",
        conference.mean_word_accuracy,
        anechoic.mean_word_accuracy
    );

    // (2) The doorway layout: compare at 3 m.  The leak drops by tens of
    // dB; the voice path loses at most one word of accuracy.
    let anechoic_cell = report
        .find_cell(&CellCoords {
            distance_index: 1,
            ..CellCoords::default()
        })
        .unwrap();
    let doorway_cell = report
        .find_cell(&CellCoords {
            room_index: 2,
            distance_index: 1,
            ..CellCoords::default()
        })
        .unwrap();
    let leak_drop_db = anechoic_cell.stats.mean_bystander_spl_db.unwrap()
        - doorway_cell.stats.mean_bystander_spl_db.unwrap();
    let accuracy_drop =
        anechoic_cell.stats.mean_word_accuracy - doorway_cell.stats.mean_word_accuracy;
    assert!(
        leak_drop_db >= 15.0,
        "doorway leak drop only {leak_drop_db} dB"
    );
    assert!(
        accuracy_drop <= 0.21,
        "doorway degraded the voice path too much: {accuracy_drop}"
    );
    // The leak is attenuated (in dB) far more than the voice path (in
    // words): the doorway scenario makes the attack *stealthier*.
    let doorway_range = doorway
        .mean_word_accuracy
        .iter()
        .zip(anechoic.mean_word_accuracy.iter())
        .all(|(d, a)| d + 0.21 >= *a);
    assert!(doorway_range, "doorway curve collapsed: {doorway:?}");
}

#[test]
fn bigger_array_with_more_power_is_monotone_or_explained() {
    // Regression test for the E-A2 anomaly: the 61-element / 400 W array
    // used to *underperform* the 16-element / 120 W one at 3-6 m because
    // the carrier was silently capped at one element's 30 W rating while
    // the sideband budget kept growing (sideband x sideband distortion then
    // swamps the carrier x sideband voice product inside the microphone).
    // With the balanced carrier-element allocation the bigger, stronger
    // array must do at least as well - or the outcome must *explain* the
    // gap by reporting unplaced budget.
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];
    let at = |num_elements: usize, total_power_w: f64| {
        let scenario = Scenario {
            delivery: Delivery::ArrayUltrasound {
                num_elements,
                total_power_w,
                carrier_hz: 40_000.0,
            },
            max_voice_duration_s: 0.7,
            ..Scenario::default_attack()
        }
        .at_distance(3.0);
        run_trial(command, &scenario, &recognizer, None).unwrap()
    };
    let small = at(16, 120.0);
    let big = at(61, 400.0);
    let monotone = big.word_accuracy + 1e-9 >= small.word_accuracy;
    let explained = big.power_shortfall_w > 0.0;
    assert!(
        monotone || explained,
        "61-element/400 W array underperforms (accuracy {} vs {}) with no reported \
         power shortfall ({} W)",
        big.word_accuracy,
        small.word_accuracy,
        big.power_shortfall_w
    );
    // With the current ratings (30 W/element) the whole 400 W budget fits,
    // so the monotone branch is the one that must hold today.
    assert_eq!(big.power_shortfall_w, 0.0);
    assert!(monotone);
}
