//! Orchestrator integration tests at the library level: supervising a
//! campaign through [`orchestrate`] with in-process thread workers must
//! reproduce the plain [`run_campaign`] archive byte for byte — on a
//! healthy run, and on a resume from surviving checkpoints.

use inaudible_voice_commands::core::json::JsonValue;
use inaudible_voice_commands::experiments::orchestrate::{
    manifest_file_name, orchestrate, OrchestratorConfig, ThreadLauncher, MANIFEST_FORMAT,
};
use inaudible_voice_commands::experiments::shard::{run_shard, shard_archive_file_name, ShardPlan};
use inaudible_voice_commands::experiments::{run_campaign, CampaignSpec, DeliverySpec};

/// 2 cells x 2 trials: small enough to supervise quickly, large enough
/// that 2 shards each own a whole cell.
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::legitimate("talker 68 dB", 68.0),
            DeliverySpec::array("6-element array, 60 W", 6, 60.0, 40_000.0),
        ],
        distances_m: vec![1.0],
        trials_per_cell: 2,
        base_seed: 7,
        max_voice_duration_s: 0.7,
        ..CampaignSpec::new("orchestrated-tiny")
    }
}

fn test_scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ivc-orch-lib-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn thread_orchestration_reproduces_the_in_process_bytes() {
    let spec = tiny_spec();
    let baseline = run_campaign(&spec, 2).unwrap().to_json_string();
    let scratch = test_scratch("healthy");
    let mut launcher = ThreadLauncher::new(2);
    let mut status = Vec::new();
    let run = orchestrate(
        &spec,
        &OrchestratorConfig::new(2),
        &scratch,
        &mut launcher,
        &mut status,
    )
    .unwrap();
    assert_eq!(
        run.report.to_json_string(),
        baseline,
        "supervision changed the archive bytes"
    );
    assert_eq!(run.stats.launched, 2);
    assert_eq!(run.stats.resumed, 0);
    assert_eq!(run.stats.retries, 0);
    // The interim stream reported every cell with its Wilson interval.
    let text = String::from_utf8(status).unwrap();
    assert!(text.contains("cell 1/2 complete"), "{text}");
    assert!(text.contains("cell 2/2 complete"), "{text}");
    assert!(text.contains("[95% CI"), "{text}");
    // The structured manifest is the source those lines were rendered
    // from: JSONL, opening with run_start, closing with run_complete.
    let manifest = std::fs::read_to_string(scratch.join(manifest_file_name(&spec.name))).unwrap();
    let events: Vec<JsonValue> = manifest
        .lines()
        .map(|line| JsonValue::parse(line).unwrap())
        .collect();
    fn kind(e: &JsonValue) -> Option<&str> {
        e.get("kind").and_then(JsonValue::as_str)
    }
    assert_eq!(events.first().and_then(kind), Some("run_start"));
    assert_eq!(
        events
            .first()
            .and_then(|e| e.get("format"))
            .and_then(JsonValue::as_str),
        Some(MANIFEST_FORMAT)
    );
    assert_eq!(events.last().and_then(kind), Some("run_complete"));
    assert_eq!(
        events
            .iter()
            .filter(|e| kind(e) == Some("cell_complete"))
            .count(),
        2
    );
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn manifest_progress_stream_is_monotone_and_ends_complete() {
    let spec = tiny_spec();
    let scratch = test_scratch("progress");
    let mut launcher = ThreadLauncher::new(2);
    let mut status = Vec::new();
    orchestrate(
        &spec,
        &OrchestratorConfig::new(2),
        &scratch,
        &mut launcher,
        &mut status,
    )
    .unwrap();
    let manifest = std::fs::read_to_string(scratch.join(manifest_file_name(&spec.name))).unwrap();
    let events: Vec<JsonValue> = manifest
        .lines()
        .map(|line| JsonValue::parse(line).unwrap())
        .collect();
    fn kind(e: &JsonValue) -> Option<&str> {
        e.get("kind").and_then(JsonValue::as_str)
    }
    fn u64_field(e: &JsonValue, name: &str) -> u64 {
        e.get(name).and_then(JsonValue::as_u64).unwrap()
    }
    // The progress stream: present, monotone in trials done, constant in
    // total, and finishing at done == total before run_complete closes
    // the manifest.
    let progress: Vec<&JsonValue> = events
        .iter()
        .filter(|e| kind(e) == Some("progress"))
        .collect();
    assert!(!progress.is_empty(), "no progress events in the manifest");
    let total = spec.num_trials() as u64;
    let mut last_done = 0;
    for event in &progress {
        let done = u64_field(event, "done");
        assert!(done >= last_done, "progress went backwards: {manifest}");
        assert!(done <= total);
        assert_eq!(u64_field(event, "total"), total);
        last_done = done;
    }
    assert_eq!(last_done, total, "progress never reached done == total");
    // A rate is always paired with an ETA (both derive from the same
    // fresh-trial throughput).
    for event in &progress {
        assert_eq!(
            event.get("trials_per_s").is_some(),
            event.get("eta_s").is_some(),
            "rate and ETA must come together: {manifest}"
        );
    }
    // run_complete closes the manifest and carries the wall/throughput
    // summary of the whole run.
    let complete = events.last().unwrap();
    assert_eq!(kind(complete), Some("run_complete"));
    assert_eq!(u64_field(complete, "trials_total"), total);
    assert!(complete.get("wall_s").and_then(JsonValue::as_f64).is_some());
    assert!(complete
        .get("trials_per_s")
        .and_then(JsonValue::as_f64)
        .is_some());
    // The rendered stream shows the same progress lines.
    let text = String::from_utf8(status).unwrap();
    assert!(text.contains("progress:"), "{text}");
    assert!(text.contains("trial(s) done"), "{text}");
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn resume_reuses_surviving_checkpoints_and_reproduces_the_bytes() {
    let spec = tiny_spec();
    let baseline = run_campaign(&spec, 2).unwrap().to_json_string();
    let scratch = test_scratch("resume");
    std::fs::create_dir_all(&scratch).unwrap();
    // Pre-seed shard 0's checkpoint exactly as a killed previous
    // orchestrator would have left it: the canonical partial on disk.
    let plan = ShardPlan::partition(&spec, 2).unwrap();
    let job = &plan.jobs()[0];
    run_shard(job, 2)
        .unwrap()
        .save(&scratch.join(shard_archive_file_name(&spec.name, &job.shard)))
        .unwrap();

    let mut launcher = ThreadLauncher::new(2);
    let mut status = Vec::new();
    let run = orchestrate(
        &spec,
        &OrchestratorConfig::new(2),
        &scratch,
        &mut launcher,
        &mut status,
    )
    .unwrap();
    assert_eq!(run.stats.resumed, 1, "the checkpoint was not resumed");
    assert_eq!(run.stats.launched, 1, "only the missing shard should run");
    assert_eq!(
        run.report.to_json_string(),
        baseline,
        "resume changed the archive bytes"
    );
    let text = String::from_utf8(status).unwrap();
    assert!(text.contains("resumed from checkpoint"), "{text}");
    std::fs::remove_dir_all(&scratch).ok();
}
