//! Integration tests of the campaign engine through the umbrella API:
//! worker-count invariance of the archived bytes, and archive round-trips
//! via the filesystem.

use inaudible_voice_commands::experiments::presets;
use inaudible_voice_commands::experiments::{
    run_campaign, CampaignReport, CampaignSpec, DeliverySpec, DetectorSpec,
};

/// A minimal grid that still exercises attack trials end to end.
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![DeliverySpec::array(
            "6-element array, 60 W",
            6,
            60.0,
            40_000.0,
        )],
        distances_m: vec![1.0, 2.0],
        trials_per_cell: 2,
        base_seed: 11,
        max_voice_duration_s: 0.7,
        ..CampaignSpec::new("integration-tiny")
    }
}

#[test]
fn campaign_reports_are_worker_count_invariant_and_archive_losslessly() {
    let spec = tiny_spec();
    let serial = run_campaign(&spec, 1).unwrap();
    let parallel = run_campaign(&spec, 4).unwrap();

    // The tentpole promise: same spec + seed => byte-identical archives,
    // no matter how the trials were scheduled.
    let serial_json = serial.to_json_string();
    assert_eq!(serial_json, parallel.to_json_string());

    // Repeated trials really happened and reference their seeds.
    assert_eq!(serial.cells.len(), 2);
    for cell in &serial.cells {
        assert_eq!(cell.trials.len(), 2);
        assert_eq!(cell.trials[0].seed, 11);
        assert_eq!(cell.trials[1].seed, 12);
        assert!(cell.stats.success_ci_low <= cell.stats.success_rate);
        assert!(cell.stats.success_rate <= cell.stats.success_ci_high);
    }

    // Save → load → identical report, through a real file.
    let path = std::env::temp_dir().join(format!(
        "ivc-campaign-integration-{}.json",
        std::process::id()
    ));
    serial.save(&path).unwrap();
    let loaded = CampaignReport::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, serial);
    assert_eq!(loaded.to_json_string(), serial_json);
}

#[test]
fn rooms_campaign_is_worker_count_invariant() {
    // The deterministic-output guarantee extends to the room axis: the
    // `rooms` preset's archive bytes must not depend on scheduling.  The
    // grid is the built-in preset with a trimmed distance axis and a
    // shorter voice cap so the double run stays fast.
    let spec = CampaignSpec {
        distances_m: vec![1.0, 2.0],
        max_voice_duration_s: 0.7,
        ..presets::rooms(true)
    };
    let serial = run_campaign(&spec, 1).unwrap();
    let parallel = run_campaign(&spec, 8).unwrap();
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "rooms archive bytes must not depend on the worker count"
    );
    // Every room appears in the archived cells, and the report records
    // the room per cell.
    assert_eq!(serial.cells.len(), spec.rooms.len() * 2);
    for cell in &serial.cells {
        assert!(cell.cell.coords.room_index < spec.rooms.len());
    }
    let text = serial.to_json_string();
    for token in ["anechoic", "office", "conference_room", "through_doorway"] {
        assert!(text.contains(token), "archive missing room token {token}");
    }
}

#[test]
fn shared_contexts_and_new_axes_are_worker_count_invariant() {
    // The staged executor shares PreparedCells across a cell's trials,
    // talker-variant renders across legitimate trials, and one trained
    // detector across an axis entry's cells.  None of that sharing may
    // leak scheduling into the archive: the bytes must match at any
    // worker count, with every v3 axis in play at once.
    let spec = CampaignSpec {
        detectors: vec![
            None,
            Some(DetectorSpec {
                distances_m: vec![1.5],
                num_speaker_variants: 3,
                command_indices: vec![0],
                max_voice_duration_s: 0.7,
                ..DetectorSpec::standard(true)
            }),
        ],
        deliveries: vec![
            DeliverySpec::legitimate("talker 68 dB", 68.0),
            DeliverySpec::single_speaker("single speaker", 18.7, 40_000.0)
                .with_shadow_suppression(0.5),
        ],
        carriers_hz: vec![Some(30_000.0)],
        powers_w: vec![None, Some(10.0)],
        distances_m: vec![1.5],
        trials_per_cell: 3,
        base_seed: 6, // variants 6, 7, 0 across the three trials
        max_voice_duration_s: 0.7,
        ..CampaignSpec::new("integration-v3-axes")
    };
    let serial = run_campaign(&spec, 1).unwrap();
    let parallel = run_campaign(&spec, 8).unwrap();
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "v3-axis archive bytes must not depend on the worker count"
    );
    // The detector half of the grid carries probabilities, the plain half
    // does not; both halves agree on everything else (the detector only
    // *observes* trials).
    let half = serial.cells.len() / 2;
    for (plain, scored) in serial.cells.iter().zip(serial.cells[half..].iter()) {
        for (p, s) in plain.trials.iter().zip(scored.trials.iter()) {
            assert_eq!(p.detection_probability, None);
            assert!(s.detection_probability.is_some());
            assert_eq!(p.accepted, s.accepted);
            assert_eq!(p.word_accuracy, s.word_accuracy);
            assert_eq!(p.defense_features, s.defense_features);
        }
    }
}
