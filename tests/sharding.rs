//! Shard-invariance integration tests: splitting a campaign into shards
//! — at any shard count, at any per-shard worker count, with partials
//! shipped through their on-disk wire format — must reproduce the
//! single-process archive **byte for byte**.

use inaudible_voice_commands::experiments::presets;
use inaudible_voice_commands::experiments::shard::{
    merge_shards, run_shard, ShardArchive, ShardPlan,
};
use inaudible_voice_commands::experiments::{run_campaign, CampaignSpec};

/// Runs `spec` as `num_shards` shards of `workers` threads each, shipping
/// every partial through a real file in the given wire format (`"bin"`
/// for columnar, `"json"` for the legacy text encoding — the extension
/// picks the encoding, exactly as in the CLI contract), and returns the
/// merged archive bytes.
fn sharded_archive_bytes(
    spec: &CampaignSpec,
    num_shards: usize,
    workers: usize,
    ext: &str,
) -> String {
    let plan = ShardPlan::partition(spec, num_shards).unwrap();
    let scratch = std::env::temp_dir().join(format!(
        "ivc-sharding-test-{}-{}-{num_shards}-{workers}-{ext}",
        std::process::id(),
        spec.name,
    ));
    std::fs::create_dir_all(&scratch).unwrap();
    let partials: Vec<ShardArchive> = plan
        .jobs()
        .iter()
        .map(|job| {
            let archive = run_shard(job, workers).unwrap();
            let path = scratch.join(format!("shard-{}.part.{ext}", job.shard.shard_index));
            archive.save(&path).unwrap();
            let reloaded = ShardArchive::load(&path).unwrap();
            assert_eq!(
                reloaded, archive,
                "the {ext} wire format must round-trip the shard exactly"
            );
            reloaded
        })
        .collect();
    std::fs::remove_dir_all(&scratch).ok();
    let merged = merge_shards(partials).unwrap();
    merged.to_json_string()
}

/// The satellite contract from the issue: the `smoke` and `a6` presets
/// produce identical archives for in-process vs 2 vs 4 shards, crossed
/// with 1 vs 4 workers.  `a6` (3 jobs) crossed with 4 shards also covers
/// the more-shards-than-jobs degenerate case end to end.
#[test]
fn smoke_and_a6_archives_are_shard_and_worker_invariant() {
    for spec in [presets::smoke(), presets::a6(true)] {
        let baseline = run_campaign(&spec, 1).unwrap().to_json_string();
        assert_eq!(
            run_campaign(&spec, 4).unwrap().to_json_string(),
            baseline,
            "{}: workers alone must not change the bytes",
            spec.name
        );
        for num_shards in [2, 4] {
            for workers in [1, 4] {
                assert_eq!(
                    sharded_archive_bytes(&spec, num_shards, workers, "bin"),
                    baseline,
                    "{}: {num_shards} shards x {workers} workers changed the archive",
                    spec.name
                );
            }
        }
        // The legacy JSON wire format must keep merging to the same bytes.
        assert_eq!(
            sharded_archive_bytes(&spec, 2, 1, "json"),
            baseline,
            "{}: JSON partials changed the archive",
            spec.name
        );
    }
}

/// Shard boundaries that fall mid-cell (a cell's trials split across two
/// shards) must still reproduce the bytes: each shard prepares the cell
/// locally and runs only its own seed range.
#[test]
fn mid_cell_shard_boundaries_reproduce_the_bytes() {
    let spec = CampaignSpec {
        deliveries: vec![
            inaudible_voice_commands::experiments::DeliverySpec::legitimate("talker 68 dB", 68.0),
            inaudible_voice_commands::experiments::DeliverySpec::array(
                "6-element array, 60 W",
                6,
                60.0,
                40_000.0,
            ),
        ],
        trials_per_cell: 3,
        base_seed: 5,
        max_voice_duration_s: 0.7,
        ..CampaignSpec::new("mid-cell-shards")
    };
    // 2 cells x 3 trials = 6 jobs; 4 shards gives [2, 2, 1, 1] — the
    // first boundary lands inside cell 0, the second inside cell 1.
    let plan = ShardPlan::partition(&spec, 4).unwrap();
    assert!(
        plan.shards
            .iter()
            .any(|s| s.start_job % spec.trials_per_cell != 0),
        "plan must actually split a cell for this test to mean anything"
    );
    let baseline = run_campaign(&spec, 2).unwrap().to_json_string();
    assert_eq!(sharded_archive_bytes(&spec, 4, 2, "bin"), baseline);
}
