//! Golden-archive tests: committed fixture files lock the on-disk
//! contracts (`ivc-campaign-report-v3`, `ivc-campaign-shard-v1`,
//! `ivc-trial-columns-v1`) so a change to the serialisers cannot
//! silently reshape the bytes that ship between machines.  The fixtures
//! are built from hand-written records (no trials run), so they are
//! deterministic across platforms.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! IVC_REGEN_FIXTURES=1 cargo test -p inaudible-voice-commands --test golden_archive
//! ```

use inaudible_voice_commands::experiments::aggregate::{aggregate_cells, psychometric_curves};
use inaudible_voice_commands::experiments::columns::COLUMNS_FORMAT;
use inaudible_voice_commands::experiments::shard::{ShardArchive, ShardRange, SHARD_FORMAT};
use inaudible_voice_commands::experiments::{
    BandSummarySpec, CampaignReport, CampaignSpec, DeliverySpec, DetectorSpec, EnvironmentPreset,
    TrialRecord,
};
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/fixtures/{name}"))
}

/// The fixture campaign: every optional member of the format exercised —
/// detector axis, carrier/power overrides, a room, an infinite voice cap
/// (archived as null), a band summary and a large u64 seed.
fn fixture_spec() -> CampaignSpec {
    CampaignSpec {
        detectors: vec![None, Some(DetectorSpec::standard(true))],
        deliveries: vec![
            DeliverySpec::legitimate("talker 65 dB", 65.0),
            DeliverySpec::array("array (8 elements, 40 W)", 8, 40.0, 40_000.0)
                .with_shadow_suppression(0.25),
        ],
        carriers_hz: vec![None, Some(30_000.0)],
        powers_w: vec![Some(23.7)],
        rooms: vec![Some(ivc_room::RoomPreset::Office)],
        environments: vec![EnvironmentPreset::WinterIndoor],
        command_indices: vec![0, 2],
        distances_m: vec![1.0, 2.5],
        trials_per_cell: 2,
        base_seed: u64::MAX - 7,
        max_voice_duration_s: f64::INFINITY,
        recording_band_summary: Some(BandSummarySpec {
            bands: 3,
            max_hz: 8_000.0,
        }),
        ..CampaignSpec::new("golden-fixture")
    }
}

/// A deterministic record for a slot: plausible values covering the
/// present/absent branches of every optional member.
fn fixture_record(spec: &CampaignSpec, cell_index: usize, trial_index: usize) -> TrialRecord {
    let cells = spec.cells();
    let coords = &cells[cell_index].coords;
    let attack = spec.deliveries[coords.delivery_index].delivery.is_attack();
    let detector = spec.detectors[coords.detector_index].is_some();
    let x = (cell_index * spec.trials_per_cell + trial_index) as f64;
    TrialRecord {
        cell_index,
        trial_index,
        seed: spec.trial_seed(trial_index),
        accepted: (cell_index + trial_index) % 2 == 0,
        word_accuracy: 1.0 / (1.0 + 0.25 * x),
        recognized_words: vec!["ok".to_string(), "google".to_string()],
        bystander_spl_db: attack.then_some(41.5 - 0.125 * x),
        bystander_spl_dba: attack.then_some(33.25 - 0.125 * x),
        bystander_voice_spl_db: attack.then_some(19.0625 - 0.125 * x),
        leak_audible: attack.then_some(cell_index % 3 == 0),
        power_shortfall_w: if cell_index % 4 == 0 { 2.5 } else { 0.0 },
        defense_features: vec![0.5 + x, -1.25, 3.0625, 0.0],
        detection_probability: detector.then_some(if attack { 0.9375 } else { 0.0625 }),
        recording_band_summary_db: Some(vec![-10.5 - x, -20.25, -30.125]),
    }
}

fn fixture_report() -> CampaignReport {
    let spec = fixture_spec();
    let cells = spec.cells();
    let mut records: Vec<TrialRecord> = Vec::new();
    for cell in &cells {
        for trial in 0..spec.trials_per_cell {
            records.push(fixture_record(&spec, cell.cell_index, trial));
        }
    }
    let cell_reports = aggregate_cells(&spec, &cells, records);
    let curves = psychometric_curves(&spec, &cell_reports);
    CampaignReport {
        spec,
        cells: cell_reports,
        curves,
    }
}

fn fixture_shard() -> ShardArchive {
    let spec = fixture_spec();
    // Shard 1 of 3 of the 32-job space: slots [11, 22) — boundaries fall
    // mid-cell on both ends, the hardest case for the slot bookkeeping.
    let shard = ShardRange {
        shard_index: 1,
        num_shards: 3,
        start_job: 11,
        end_job: 22,
    };
    let records = (shard.start_job..shard.end_job)
        .map(|slot| {
            fixture_record(
                &spec,
                slot / spec.trials_per_cell,
                slot % spec.trials_per_cell,
            )
        })
        .collect();
    ShardArchive {
        spec,
        shard,
        records,
    }
}

/// Asserts `bytes` equals the committed fixture, or rewrites the fixture
/// when `IVC_REGEN_FIXTURES=1` (for intentional format changes).
fn assert_matches_fixture(name: &str, bytes: &str) {
    let path = fixture_path(name);
    if std::env::var("IVC_REGEN_FIXTURES").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    assert_eq!(
        bytes, committed,
        "{name} drifted from the committed fixture; if the format change is \
         intentional, bump the format tag and regenerate with IVC_REGEN_FIXTURES=1"
    );
}

#[test]
fn report_fixture_is_locked_and_round_trips_byte_exactly() {
    let report = fixture_report();
    assert_matches_fixture("campaign-report-v3.json", &report.to_json_string());

    // load → save round-trips the committed file byte-exactly.
    let path = fixture_path("campaign-report-v3.json");
    let committed = std::fs::read_to_string(&path).unwrap();
    let loaded = CampaignReport::load(&path).unwrap();
    assert_eq!(loaded, report);
    assert_eq!(loaded.to_json_string(), committed);
    let resaved =
        std::env::temp_dir().join(format!("ivc-golden-report-{}.json", std::process::id()));
    loaded.save(&resaved).unwrap();
    let rewritten = std::fs::read_to_string(&resaved).unwrap();
    std::fs::remove_file(&resaved).ok();
    assert_eq!(rewritten, committed);
}

#[test]
fn shard_fixture_is_locked_and_round_trips_byte_exactly() {
    let shard = fixture_shard();
    assert_matches_fixture("campaign-shard-v1.json", &shard.to_json_string());

    let path = fixture_path("campaign-shard-v1.json");
    let committed = std::fs::read_to_string(&path).unwrap();
    let loaded = ShardArchive::load(&path).unwrap();
    assert_eq!(loaded, shard);
    assert_eq!(loaded.to_json_string(), committed);
}

/// The binary twin of [`assert_matches_fixture`] for columnar fixtures.
fn assert_matches_fixture_bytes(name: &str, bytes: &[u8]) {
    let path = fixture_path(name);
    if std::env::var("IVC_REGEN_FIXTURES").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let committed =
        std::fs::read(&path).unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    assert_eq!(
        bytes, committed,
        "{name} drifted from the committed fixture; if the format change is \
         intentional, bump the format tag and regenerate with IVC_REGEN_FIXTURES=1"
    );
}

#[test]
fn trial_columns_fixture_is_locked_and_round_trips_byte_exactly() {
    let shard = fixture_shard();
    assert_matches_fixture_bytes("trial-columns-v1.bin", &shard.to_column_bytes());

    // load (format sniffed from the bytes) → save (columnar via the .bin
    // extension) round-trips the committed file byte-exactly.
    let path = fixture_path("trial-columns-v1.bin");
    let committed = std::fs::read(&path).unwrap();
    let loaded = ShardArchive::load(&path).unwrap();
    assert_eq!(loaded, shard);
    let resaved =
        std::env::temp_dir().join(format!("ivc-golden-columns-{}.bin", std::process::id()));
    loaded.save(&resaved).unwrap();
    let rewritten = std::fs::read(&resaved).unwrap();
    std::fs::remove_file(&resaved).ok();
    assert_eq!(rewritten, committed);

    // The columnar bytes and the JSON text describe the same archive.
    assert_eq!(ShardArchive::from_column_bytes(&committed).unwrap(), shard);
}

#[test]
fn truncated_columnar_archives_are_rejected_loudly() {
    let bytes = fixture_shard().to_column_bytes();
    // Chop at several depths: inside the tag, inside the header, inside
    // the column data and one byte short of the end.  Every cut must be
    // an error, never a silent partial read.
    for cut in [0, 4, 12, 40, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            ShardArchive::from_column_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} bytes must be rejected",
            bytes.len()
        );
    }
    // Trailing garbage is just as loud.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(
        ShardArchive::from_column_bytes(&padded).is_err(),
        "trailing bytes must be rejected"
    );
}

#[test]
fn older_format_tags_fail_with_a_versioned_error() {
    let report_text = fixture_report().to_json_string();
    for old_tag in ["ivc-campaign-report-v1", "ivc-campaign-report-v2"] {
        let aged = report_text.replace("ivc-campaign-report-v3", old_tag);
        let err = CampaignReport::from_json_str(&aged)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains(old_tag) && err.contains("ivc-campaign-report-v3"),
            "error must name both the found and the expected version: {err}"
        );
    }

    let shard_text = fixture_shard().to_json_string();
    let aged = shard_text.replace(SHARD_FORMAT, "ivc-campaign-shard-v0");
    let err = ShardArchive::from_json_str(&aged).unwrap_err().to_string();
    assert!(
        err.contains("ivc-campaign-shard-v0") && err.contains(SHARD_FORMAT),
        "error must name both the found and the expected version: {err}"
    );

    // Columnar: the version tag is the first length-prefixed string, so a
    // same-length substitution ages the bytes without breaking framing.
    let mut aged_bytes = fixture_shard().to_column_bytes();
    let old_tag = b"ivc-trial-columns-v0";
    assert_eq!(old_tag.len(), COLUMNS_FORMAT.len());
    aged_bytes[8..8 + old_tag.len()].copy_from_slice(old_tag);
    let err = ShardArchive::from_column_bytes(&aged_bytes)
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("ivc-trial-columns-v0") && err.contains(COLUMNS_FORMAT),
        "error must name both the found and the expected version: {err}"
    );
}
