//! Workspace smoke test: one call that exercises the whole crate graph
//! (dsp → acoustics → speech → attack → defense → core) through the
//! umbrella prelude, proving the re-exports and the dependency edges the
//! manifests declare actually line up.

use inaudible_voice_commands::prelude::*;
use inaudible_voice_commands::speech::commands::corpus;
use inaudible_voice_commands::speech::recognizer::Recognizer;

#[test]
fn prelude_reexports_cover_every_layer() {
    // One item per substrate, all through the single glob import above.
    let _window = WindowKind::Hann.symmetric(16);
    let _signal = Signal::tone(1_000.0, 0.1, 0.5, 48_000.0).unwrap();
    let _features_dim = DefenseFeatures::DIMENSION;
    let _baseband = BasebandConfig::default();
    let scenario = Scenario::default_attack();
    assert!(scenario.delivery.is_attack());
}

#[test]
fn default_attack_trial_is_coherent_end_to_end() {
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];
    let scenario = Scenario {
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };

    let outcome: TrialOutcome = run_trial(command, &scenario, &recognizer, None).unwrap();

    // The recording must be a real, finite signal at the device's rate.
    assert!(!outcome.recording.is_empty());
    assert!(outcome.recording.samples().iter().all(|x| x.is_finite()));

    // Word accuracy is a fraction; the defense features a finite vector.
    assert!((0.0..=1.0).contains(&outcome.word_accuracy));
    assert!(outcome
        .defense_features
        .to_vector()
        .iter()
        .all(|x| x.is_finite()));

    // An attack delivery must report speaker-side leakage; no detector was
    // supplied, so no detection probability is present.
    assert!(outcome.leakage.is_some());
    assert!(outcome.detection_probability.is_none());
}
