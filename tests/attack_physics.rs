//! Integration tests of the physical claims that make the attack and the
//! defense work, exercised through the public crate boundaries.

use inaudible_voice_commands::acoustics::array::SpeakerArray;
use inaudible_voice_commands::acoustics::environment::AirEnvironment;
use inaudible_voice_commands::acoustics::microphone::DevicePreset;
use inaudible_voice_commands::acoustics::psychoacoustics::audibility;
use inaudible_voice_commands::acoustics::speaker::UltrasonicSpeaker;
use inaudible_voice_commands::attack::baseband::BasebandConfig;
use inaudible_voice_commands::attack::multispeaker::MultiSpeakerAttack;
use inaudible_voice_commands::dsp::signal::Signal;
use inaudible_voice_commands::dsp::spectrum::band_power;

fn syllabic_voice() -> Signal {
    let fs = 48_000.0;
    let n = (0.8 * fs) as usize;
    let samples: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            let syllable = 0.55 + 0.45 * (2.0 * std::f64::consts::PI * 3.5 * t).sin();
            syllable
                * (0.5 * (2.0 * std::f64::consts::PI * 380.0 * t).sin()
                    + 0.35 * (2.0 * std::f64::consts::PI * 1_250.0 * t).sin()
                    + 0.2 * (2.0 * std::f64::consts::PI * 2_400.0 * t).sin())
        })
        .collect();
    let mut s = Signal::new(samples, fs).unwrap();
    s.normalize_peak(0.5);
    s
}

#[test]
fn the_attack_field_is_inaudible_but_the_recording_contains_voice() {
    let voice = syllabic_voice();
    let attack =
        MultiSpeakerAttack::build(&voice, 40_000.0, 6, &BasebandConfig::default()).unwrap();
    let array = SpeakerArray::new(UltrasonicSpeaker::default(), 6, 0.03).unwrap();
    let drives = attack.element_drives(50.0, 0.3, 30.0).unwrap();
    let env = AirEnvironment::default();

    // The segmented field carries far less *intelligible* (voice-band)
    // residue than the same signal played from a single element at the same
    // total power — the property that lets the real attack stay unnoticed.
    let field = array.field_at_target(&drives, 2.0, &env).unwrap();
    let fs_field = field.sample_rate_hz();
    let single_attack = inaudible_voice_commands::attack::single::SingleSpeakerAttack::build(
        &voice,
        40_000.0,
        0.9,
        &BasebandConfig::default(),
    )
    .unwrap();
    let single_array = SpeakerArray::new(UltrasonicSpeaker::default(), 1, 0.03).unwrap();
    let single_drives =
        inaudible_voice_commands::attack::multispeaker::single_speaker_element_drives(
            &single_attack,
            30.0,
        )
        .unwrap();
    let single_field = single_array
        .field_at_target(&single_drives, 2.0, &env)
        .unwrap();
    let segmented_voice_leak = band_power(field.samples(), fs_field, 300.0, 4_000.0).unwrap();
    let single_voice_leak = band_power(single_field.samples(), fs_field, 300.0, 4_000.0).unwrap();
    assert!(
        single_voice_leak > segmented_voice_leak * 3.0,
        "segmented voice-band leakage ({segmented_voice_leak:.3e}) should be well below the \
         single-speaker equivalent ({single_voice_leak:.3e})"
    );
    // And a much louder legitimate-speech field at the same spot WOULD be heard,
    // confirming the audibility model is not trivially silent.
    let report = audibility(field.samples(), fs_field, 60.0).unwrap();
    assert!(
        !report.audible,
        "residue should not be flagged at a 60 dB margin"
    );

    // ...while the non-linear microphone turns the field into an audible-band recording.
    let mic = DevicePreset::AndroidPhone.microphone();
    let recording = mic.capture(&field, 5).unwrap();
    let fs = recording.sample_rate_hz();
    let voice_band = band_power(recording.samples(), fs, 300.0, 3_000.0).unwrap();
    let high_band = band_power(recording.samples(), fs, 8_000.0, 20_000.0).unwrap();
    assert!(
        voice_band / high_band > 10.0,
        "recording should carry voice-band energy (ratio {})",
        voice_band / high_band
    );
}

#[test]
fn a_linear_microphone_is_immune() {
    let voice = syllabic_voice();
    let attack =
        MultiSpeakerAttack::build(&voice, 40_000.0, 6, &BasebandConfig::default()).unwrap();
    let array = SpeakerArray::new(UltrasonicSpeaker::default(), 6, 0.03).unwrap();
    let drives = attack.element_drives(50.0, 0.3, 30.0).unwrap();
    let env = AirEnvironment::default();
    let field = array.field_at_target(&drives, 2.0, &env).unwrap();

    let nonlinear = DevicePreset::AndroidPhone
        .microphone()
        .capture(&field, 5)
        .unwrap();
    let linear = DevicePreset::LinearReference
        .microphone()
        .capture(&field, 5)
        .unwrap();
    let fs = nonlinear.sample_rate_hz();
    let injected_nonlinear = band_power(nonlinear.samples(), fs, 300.0, 3_000.0).unwrap();
    let injected_linear = band_power(linear.samples(), fs, 300.0, 3_000.0).unwrap();
    assert!(
        injected_nonlinear / injected_linear > 10.0,
        "non-linear mic should demodulate ({}x)",
        injected_nonlinear / injected_linear
    );
}

#[test]
fn echo_needs_the_attacker_closer_than_the_phone() {
    // The plastic-grille device attenuates ultrasound more, so at the same
    // distance its demodulated voice is weaker.
    let voice = syllabic_voice();
    let attack =
        MultiSpeakerAttack::build(&voice, 40_000.0, 6, &BasebandConfig::default()).unwrap();
    let array = SpeakerArray::new(UltrasonicSpeaker::default(), 6, 0.03).unwrap();
    let drives = attack.element_drives(50.0, 0.3, 30.0).unwrap();
    let env = AirEnvironment::default();
    let field = array.field_at_target(&drives, 3.0, &env).unwrap();

    let phone = DevicePreset::AndroidPhone
        .microphone()
        .capture(&field, 6)
        .unwrap();
    let echo = DevicePreset::AmazonEcho
        .microphone()
        .capture(&field, 6)
        .unwrap();
    let fs = phone.sample_rate_hz();
    let phone_voice = band_power(phone.samples(), fs, 300.0, 3_000.0).unwrap();
    let echo_voice = band_power(echo.samples(), fs, 300.0, 3_000.0).unwrap();
    assert!(
        phone_voice > echo_voice * 2.0,
        "phone {} vs echo {}",
        phone_voice,
        echo_voice
    );
}
